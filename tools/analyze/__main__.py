#!/usr/bin/env python3
"""srbsg-analyze: AST-accurate domain static analysis for the simulator.

The third leg of the correctness stack (lint -> runtime audit -> static
analysis).  Drives plain `clang -Xclang -ast-dump=json` over the
CMake-exported compile database and runs domain-specific checks:

  a1-width          64-bit address/wear values narrowed below 64 bits
  a2-determinism    randomness / wall clock / pointer hashing /
                    unordered-container iteration (includes the regex
                    pre-pass folded in from tools/lint.py R1)
  a3-race           unsynchronized shared-state writes in pool lambdas
  a4-state          mutable static state inside wear-leveling schemes
  a5-unchecked      WearLeveler entry points with unvalidated parameters
  a6-batch          per-write loops in bench//src/attack that should use
                    the batched write path (write_batch / write_cycle)

Usage:
  python3 tools/analyze                         # src/ + bench/ vs baseline
  python3 tools/analyze --paths src/wl          # restrict to a subtree
  python3 tools/analyze --sources f.cpp -- -I.  # standalone sources
  python3 tools/analyze --ast-json dump.json    # pre-dumped AST (testing)
  python3 tools/analyze --write-baseline        # accept current findings

Exit status: 0 clean (or AST layer skipped: no clang), 1 new findings,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import baseline as baseline_mod
import driver
import prepass
import report
from checks import ALL_CHECKS, CHECKS_BY_ID

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline.json")


def parse_args(argv: list[str]) -> argparse.Namespace:
    extra_args: list[str] = []
    if "--" in argv:
        split = argv.index("--")
        extra_args = argv[split + 1:]
        argv = argv[:split]
    parser = argparse.ArgumentParser(prog="srbsg-analyze",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json (default: repo root "
                             "symlink, then build/)")
    parser.add_argument("--paths", nargs="*", default=None,
                        help="restrict analysis to these repo-relative paths")
    parser.add_argument("--sources", nargs="*", default=None,
                        help="analyze standalone sources (flags after --)")
    parser.add_argument("--ast-json", action="append", default=None,
                        help="analyze a pre-dumped clang JSON AST (testing)")
    parser.add_argument("--checks", default=None,
                        help="comma-separated check ids (default: all)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current new findings into the baseline")
    parser.add_argument("--clang", default=None, help="clang driver to use")
    parser.add_argument("--no-pre-pass", action="store_true",
                        help="skip the regex R1 pre-pass")
    parser.add_argument("--jobs", type=int, default=0)
    parser.add_argument("--json", action="store_true", dest="json_output")
    parser.add_argument("--repo-root", default=REPO_ROOT,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    args.extra_args = extra_args
    return args


def resolve_checks(spec: str | None) -> list[str]:
    if not spec:
        return [c.id for c in ALL_CHECKS]
    ids = [part.strip() for part in spec.split(",") if part.strip()]
    for check_id in ids:
        if check_id not in CHECKS_BY_ID:
            raise SystemExit(f"srbsg-analyze: unknown check '{check_id}' "
                             f"(known: {', '.join(CHECKS_BY_ID)})")
    return ids


def find_compile_db(args: argparse.Namespace) -> str | None:
    candidates = [args.compile_db] if args.compile_db else [
        os.path.join(args.repo_root, "compile_commands.json"),
        os.path.join(args.repo_root, "build", "compile_commands.json"),
    ]
    for candidate in candidates:
        if candidate and os.path.isfile(candidate):
            return candidate
    return None


def main(argv: list[str]) -> int:
    args = parse_args(argv)
    if args.list_checks:
        for cls in ALL_CHECKS:
            scope = ", ".join(cls.scope_dirs) if cls.scope_dirs else "src/"
            print(f"{cls.id:16} [{scope}] {cls.description}")
        return 0

    check_ids = resolve_checks(args.checks)
    repo_root = os.path.abspath(args.repo_root)
    src_root = os.path.join(repo_root, "src")
    findings: list[dict] = []
    errors: list[str] = []
    merged_functions: dict = {}
    merged_entries: list[dict] = []
    skipped_notice = ""
    tus: list[dict] = []

    if args.ast_json:
        # Testing mode: run the checks over pre-dumped ASTs, no clang.
        for path in args.ast_json:
            try:
                with open(path, encoding="utf-8") as fh:
                    root = json.load(fh)
            except (OSError, json.JSONDecodeError) as err:
                print(f"srbsg-analyze: cannot load {path}: {err}",
                      file=sys.stderr)
                return 2
            ctx = driver.analyze_ast(root, repo_root, src_root,
                                     [CHECKS_BY_ID[c] for c in check_ids])
            findings.extend(ctx.findings)
            for key, rec in ctx.a5_functions.items():
                merged = merged_functions.setdefault(
                    key, {"name": rec["name"], "sig": rec["sig"],
                          "checks": False, "calls": set()})
                merged["checks"] = merged["checks"] or rec["checks"]
                merged["calls"].update(rec["calls"])
            merged_entries.extend(ctx.a5_entries)
    else:
        clang = driver.find_clang(args.clang)
        if args.sources:
            tus = [{"file": os.path.abspath(s),
                    "rel": os.path.relpath(os.path.abspath(s), repo_root),
                    "flags": list(args.extra_args)} for s in args.sources]
        else:
            db_path = find_compile_db(args)
            if db_path is None:
                print("srbsg-analyze: no compile_commands.json found — "
                      "configure the build first (cmake -B build -S .)",
                      file=sys.stderr)
                return 2
            tus = driver.select_tus(driver.load_compile_db(db_path),
                                    repo_root, args.paths)
        if clang is None:
            skipped_notice = ("srbsg-analyze: clang not found — AST checks "
                              "skipped (regex pre-pass only); install clang "
                              "to run the full analysis")
        else:
            findings, merged_functions, merged_entries, errors = \
                driver.run_tus(clang, tus, repo_root, src_root, check_ids,
                               args.jobs)

    if "a5-unchecked" in check_ids and (merged_functions or merged_entries):
        from checks import UncheckedCheck
        findings.extend(UncheckedCheck.finalize(
            merged_functions, merged_entries, UncheckedCheck.suggestion))

    if not args.no_pre_pass and "a2-determinism" in check_ids \
            and not args.ast_json:
        scan = prepass.prepass_files(
            repo_root, tus,
            [os.path.relpath(os.path.abspath(s), repo_root)
             for s in (args.sources or [])])
        findings = prepass.merge_prepass(
            findings, prepass.run_prepass(repo_root, scan))

    base = {} if (args.no_baseline or args.write_baseline) else \
        baseline_mod.load_baseline(args.baseline)
    suppressions = baseline_mod.SuppressionIndex(repo_root)
    new, baselined, suppressed = baseline_mod.filter_findings(
        findings, base, suppressions)

    if args.write_baseline:
        previous = baseline_mod.load_baseline(args.baseline)
        baseline_mod.write_baseline(args.baseline, new, previous)
        print(f"srbsg-analyze: baseline written to {args.baseline} "
              f"({len(new)} entrie(s))")
        return 0

    if args.json_output:
        report.print_json(new, baselined, suppressed, errors,
                          bool(skipped_notice))
        if skipped_notice:
            print(skipped_notice, file=sys.stderr)
    else:
        report.print_text(new, baselined, suppressed, errors, skipped_notice)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
