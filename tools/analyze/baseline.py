"""Baseline and suppression handling for srbsg-analyze.

Two ways to accept a finding:

* an inline suppression comment on the finding's line or the line above:
      // srbsg-analyze: suppress(a1-width) <one-line justification>
  (multiple ids: suppress(a1-width,a2-determinism));

* a committed baseline entry (tools/analyze/baseline.json), keyed by
  (check, file, context, message) — deliberately *not* by line number,
  so unrelated edits shifting code do not invalidate the baseline.

`--write-baseline` regenerates the file from the current findings,
preserving justifications of entries whose keys survive.
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

SUPPRESS_RE = re.compile(r"srbsg-analyze:\s*suppress\(([a-z0-9,\s-]+)\)")


class SuppressionIndex:
    """Lazy per-file index of suppression comments."""

    def __init__(self, repo_root: str):
        self.repo_root = repo_root
        self._cache: dict[str, dict[int, set]] = {}

    def _load(self, rel: str) -> dict[int, set]:
        cached = self._cache.get(rel)
        if cached is not None:
            return cached
        index: dict[int, set] = {}
        path = os.path.join(self.repo_root, rel)
        if os.path.isfile(path):
            try:
                with open(path, encoding="utf-8", errors="replace") as fh:
                    for lineno, line in enumerate(fh, start=1):
                        match = SUPPRESS_RE.search(line)
                        if match:
                            ids = {part.strip() for part in
                                   match.group(1).split(",") if part.strip()}
                            index[lineno] = ids
            except OSError:
                pass
        self._cache[rel] = index
        return index

    def is_suppressed(self, finding: dict) -> bool:
        index = self._load(finding["file"])
        if not index:
            return False
        line = finding.get("line", 0)
        for candidate in (line, line - 1):
            ids = index.get(candidate)
            if ids and finding["check"] in ids:
                return True
        return False


def _key(finding: dict) -> tuple:
    return (finding["check"], finding["file"], finding.get("context", ""),
            finding["message"])


def load_baseline(path: str) -> dict:
    """Maps baseline key -> entry dict; empty when the file is absent."""
    if not os.path.isfile(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    entries = {}
    for entry in data.get("findings", []):
        key = (entry.get("check", ""), entry.get("file", ""),
               entry.get("context", ""), entry.get("message", ""))
        entries[key] = entry
    return entries


def write_baseline(path: str, findings: list[dict],
                   previous: Optional[dict] = None) -> None:
    previous = previous or {}
    entries = []
    seen = set()
    for finding in findings:
        key = _key(finding)
        if key in seen:
            continue
        seen.add(key)
        old = previous.get(key, {})
        entries.append({
            "check": finding["check"],
            "file": finding["file"],
            "context": finding.get("context", ""),
            "message": finding["message"],
            "justification": old.get("justification",
                                     "TODO: justify or fix"),
        })
    entries.sort(key=lambda e: (e["file"], e["check"], e["message"]))
    payload = {
        "comment": ("srbsg-analyze baseline: accepted findings with a "
                    "one-line justification each. Regenerate with "
                    "--write-baseline (justifications of surviving entries "
                    "are preserved)."),
        "version": 1,
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def prune_stale(path: str, repo_root: str) -> list[dict]:
    """Drops baseline entries whose file is gone or whose recorded
    context no longer appears in that file; rewrites the baseline in
    place (justifications of surviving entries untouched) and returns
    the pruned entries.  Keeps the file unmodified when nothing is
    stale."""
    if not os.path.isfile(path):
        return []
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    kept: list[dict] = []
    pruned: list[dict] = []
    file_text: dict[str, Optional[str]] = {}
    for entry in payload.get("findings", []):
        rel = entry.get("file", "")
        if rel not in file_text:
            full = os.path.join(repo_root, rel)
            if os.path.isfile(full):
                try:
                    with open(full, encoding="utf-8",
                              errors="replace") as fh:
                        file_text[rel] = fh.read()
                except OSError:
                    file_text[rel] = None
            else:
                file_text[rel] = None
        text = file_text[rel]
        context = entry.get("context", "")
        if text is None or (context and context not in text):
            pruned.append(entry)
        else:
            kept.append(entry)
    if pruned:
        payload["findings"] = kept
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return pruned


def filter_findings(findings: list[dict], baseline: dict,
                    suppressions: SuppressionIndex) -> tuple:
    """(new, baselined, suppressed) partition, deduplicated and sorted."""
    new: list[dict] = []
    baselined: list[dict] = []
    suppressed: list[dict] = []
    seen = set()
    ordered = sorted(findings,
                     key=lambda f: (f["file"], f.get("line", 0), f["check"],
                                    f["message"]))
    for finding in ordered:
        dedup = (finding["check"], finding["file"], finding.get("line", 0),
                 finding["message"])
        if dedup in seen:
            continue
        seen.add(dedup)
        if suppressions.is_suppressed(finding):
            suppressed.append(finding)
        elif _key(finding) in baseline:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined, suppressed
