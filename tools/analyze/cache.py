"""Incremental analysis cache for srbsg-analyze.

One JSON file maps each TU's repo-relative path to its last analysis
result: the findings it produced and the per-check whole-program
summaries (see graph.py).  Because summaries round-trip losslessly, a
warm run never invokes clang for unchanged TUs yet still re-solves the
interprocedural fixed points over the full program — edits to one TU
update every cross-TU finding.

Invalidation is deliberately coarse and content-based:

* cache-wide: the clang version string or the enabled check set
  changing discards the whole file (summaries are check-shaped, and a
  new clang can change every dump detail);
* per entry: the TU's content hash, its forwarded compile flags, or the
  content hash of any header it pulled in (the TU's dep list, recorded
  from the paths the checks resolved) changing re-analyzes that TU and
  evicts its stale findings.

Writes are atomic (tmp + rename) so a crashed run cannot leave a
truncated cache; a corrupt/unreadable file degrades to an empty cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

CACHE_VERSION = 1


def _sha256(path: str) -> Optional[str]:
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return None


def _flags_hash(flags: list) -> str:
    return hashlib.sha256("\x1f".join(flags).encode()).hexdigest()[:16]


class AnalysisCache:
    def __init__(self, path: str, clang: str, check_ids: list):
        self.path = path
        self.meta = {"version": CACHE_VERSION, "clang": clang,
                     "checks": sorted(check_ids)}
        self.entries: dict = {}
        self._sha_cache: dict = {}  # per-run file-content hash memo
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError, ValueError):
            return
        if not isinstance(data, dict) or data.get("meta") != self.meta:
            # Version / clang / check-set mismatch: start cold.
            self._dirty = True
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def _hash(self, abspath: str) -> Optional[str]:
        cached = self._sha_cache.get(abspath, "?")
        if cached != "?":
            return cached
        digest = _sha256(abspath)
        self._sha_cache[abspath] = digest
        return digest

    def _repo_root_of(self, tu: dict) -> str:
        """Absolute repo root derived from the TU's abs path + rel path."""
        file, rel = tu["file"], tu["rel"]
        if file.endswith(rel):
            return file[:len(file) - len(rel)].rstrip("/")
        return os.path.dirname(file)

    def lookup(self, tu: dict) -> Optional[dict]:
        """Valid cache entry for this TU, or None (cold / stale)."""
        entry = self.entries.get(tu["rel"])
        if not isinstance(entry, dict):
            return None
        if entry.get("sha") != self._hash(tu["file"]):
            return None
        if entry.get("flags") != _flags_hash(tu.get("flags") or []):
            return None
        root = self._repo_root_of(tu)
        deps = entry.get("deps")
        if not isinstance(deps, dict):
            return None
        for dep_rel, dep_sha in deps.items():
            if dep_rel == tu["rel"]:
                continue  # the TU itself is covered by entry["sha"]
            if self._hash(os.path.join(root, dep_rel)) != dep_sha:
                return None
        return entry

    def store(self, tu: dict, findings: list, summaries: dict,
              deps: list) -> None:
        root = self._repo_root_of(tu)
        dep_hashes = {}
        for dep_rel in deps:
            digest = self._hash(os.path.join(root, dep_rel))
            if digest is not None:
                dep_hashes[dep_rel] = digest
        self.entries[tu["rel"]] = {
            "sha": self._hash(tu["file"]),
            "flags": _flags_hash(tu.get("flags") or []),
            "deps": dep_hashes,
            "findings": findings,
            "summaries": summaries,
        }
        self._dirty = True

    def prune(self, keep_rels: list) -> None:
        """Drops entries for TUs no longer selected (deleted/renamed)."""
        keep = set(keep_rels)
        stale = [rel for rel in self.entries if rel not in keep]
        for rel in stale:
            del self.entries[rel]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"meta": self.meta, "entries": self.entries}
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix=".srbsg-cache-", dir=directory)
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            pass  # a cache that cannot be written is just a cold cache
