"""Check registry for srbsg-analyze.

Each check consumes clang JSON-AST cursors (see engine.py) and reports
findings as plain dicts: {check, file, line, message, suggestion,
context}.  Checks are written to under-report rather than crash when a
clang release changes a dump detail: every field access is optional.

Scoping: a check's `scope_dirs` lists the src/ and bench/ subtrees it
patrols.  Files inside the repository but outside those trees (the
analyzer's own fixture tree) are in scope for every check, so
seeded-violation fixtures exercise each check without living in src/.

The conservatism direction is fixed and intentional: calls whose bodies
the analyzer has not seen are *trusted* (assumed to validate), lambda
writes indexed by the task parameter are *allowed*, literal narrowings
that provably fit are *ignored*.  False positives erode the baseline
discipline faster than false negatives erode coverage — the runtime
auditor (src/audit) backstops what static analysis lets through.
"""

from __future__ import annotations

import re
from typing import Optional

from engine import (Cursor, JsonNode, callee_of, children, desugared_type,
                    first_expr_child, integer_literal_value, iter_subtree,
                    qual_type, type_width)

CHECK_FAMILY = {
    "check", "check_eq", "check_ne", "check_lt", "check_le", "check_gt",
    "check_ge", "checked_narrow",
}

_ADDR_TYPE = re.compile(r"\b(La|Ia|Pa|Addr<|Ns)\b")


def _is_const_qual(qual: str) -> bool:
    return qual.startswith("const ") or qual.endswith(" const")


class TuContext:
    """Per-translation-unit state shared by the checks."""

    def __init__(self, repo_root: str, src_root: str):
        self.repo_root = repo_root.rstrip("/") + "/"
        self.src_root = src_root.rstrip("/") + "/"
        self.findings: list[dict] = []
        self.a5_functions: dict[str, dict] = {}
        self.a5_entries: list[dict] = []
        # Class name -> derives-from-*WearLeveler, and decl id -> class name
        # (for parentDeclContextId resolution of out-of-line definitions).
        self.a5_class_wl: dict[str, bool] = {}
        self.a5_class_ids: dict[str, str] = {}
        self._rel_cache: dict[str, Optional[str]] = {}

    def rel(self, file: Optional[str]) -> Optional[str]:
        """Repo-relative path, or None for files outside the repository."""
        if not file:
            return None
        cached = self._rel_cache.get(file, "?")
        if cached != "?":
            return cached
        rel: Optional[str] = None
        if file.startswith(self.repo_root):
            rel = file[len(self.repo_root):]
        elif not file.startswith("/"):
            rel = file
        self._rel_cache[file] = rel
        return rel

    def in_scope(self, file: Optional[str], scope_dirs: tuple) -> bool:
        rel = self.rel(file)
        if rel is None:
            return False
        if not (rel.startswith("src/") or rel.startswith("bench/")):
            return True  # fixture / tool sources: every check applies
        if not scope_dirs:
            return True
        return any(rel.startswith(d) for d in scope_dirs)

    def add(self, check: "Check", cursor: Cursor, message: str,
            context: str = "") -> None:
        rel = self.rel(cursor.file)
        if rel is None:
            return
        if not context:
            fn = cursor.enclosing_function()
            if fn is not None:
                context = fn.get("name", "") or ""
        self.findings.append({
            "check": check.id,
            "file": rel,
            "line": cursor.line or 0,
            "message": message,
            "suggestion": check.suggestion,
            "context": context,
        })


class Check:
    id = ""
    description = ""
    suggestion = ""
    scope_dirs: tuple = ()

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:  # pragma: no cover
        raise NotImplementedError


class WidthCheck(Check):
    """A1: address/wear values funneled through a sub-64-bit type.

    The Table-I grid runs N = 2^22 lines x 1e8-write endurance; cumulative
    write counts and flat physical offsets overflow 32 bits by
    construction, so *any* 64->sub-64 integral conversion in the address
    paths is suspect.  Literal sources that provably fit are ignored;
    conversions inside a `checked_narrow` helper are the sanctioned sink.
    """

    id = "a1-width"
    description = ("64-bit address/wear value narrowed to a sub-64-bit type "
                   "in the mapping/simulation paths")
    suggestion = ("keep line/address/wear arithmetic in u64, or prove the "
                  "range and convert via srbsg::checked_narrow<T>() "
                  "(common/check.hpp)")
    scope_dirs = ("src/wl", "src/mapping", "src/sim")

    _CAST_KINDS = {"ImplicitCastExpr", "CStyleCastExpr", "CXXStaticCastExpr",
                   "CXXFunctionalCastExpr"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        node = cursor.node
        if cursor.kind not in self._CAST_KINDS:
            return
        if node.get("castKind") != "IntegralCast":
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        fn = cursor.enclosing_function()
        if fn is not None and fn.get("name") == "checked_narrow":
            return  # the checked-narrow helper is the sanctioned sink
        dst_width = type_width(node.get("type"))
        src_node = first_expr_child(node)
        src_width = type_width(src_node.get("type")) if src_node else None
        if dst_width is None or src_width is None:
            return
        if not (src_width >= 64 > dst_width):
            return
        if src_node is not None:
            literal = integer_literal_value(src_node)
            if literal is not None and self._fits(literal, node, dst_width):
                return
        explicit = "" if cursor.kind == "ImplicitCastExpr" else "explicit "
        ctx.add(self, cursor,
                f"{explicit}narrowing conversion of a {src_width}-bit value to "
                f"'{qual_type(node)}' ({dst_width} bits)")

    @staticmethod
    def _fits(value: int, cast_node: JsonNode, dst_width: int) -> bool:
        qual = desugared_type(cast_node)
        if qual.startswith("unsigned") or qual in ("bool", "char"):
            return 0 <= value < (1 << dst_width)
        return -(1 << (dst_width - 1)) <= value < (1 << (dst_width - 1))


class DeterminismCheck(Check):
    """A2: nondeterminism sources the regex linter can only approximate.

    AST-accurate versions of lint R1 (randomness / wall clock) plus the
    classes regexes cannot see: pointer hashing (heap addresses vary run
    to run under ASLR) and unordered-container iteration feeding results.
    """

    id = "a2-determinism"
    description = ("nondeterminism source: randomness, wall clock, pointer "
                   "hashing, or unordered-container iteration order")
    suggestion = ("thread an explicitly seeded srbsg::Rng through the call "
                  "path; iterate ordered containers (or sort keys first) "
                  "wherever iteration order can reach results")
    # Simulation state lives under src/; bench/ binaries time themselves
    # with wall clocks by design and are out of scope.
    scope_dirs = ("src/",)

    _BANNED_CALLS = {
        "rand": "rand() is seed-hidden global state",
        "srand": "srand() reseeds hidden global state",
        "random": "random() is seed-hidden global state",
        "drand48": "drand48() is seed-hidden global state",
        "lrand48": "lrand48() is seed-hidden global state",
        "time": "time() reads the wall clock",
        "clock": "clock() reads the process clock",
        "gettimeofday": "gettimeofday() reads the wall clock",
        "clock_gettime": "clock_gettime() reads the wall clock",
        "timespec_get": "timespec_get() reads the wall clock",
    }
    _HASH_PTR = re.compile(r"\bstd::hash<[^<>]*\*\s*>")
    _UNORDERED = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        kind = cursor.kind
        node = cursor.node
        if kind in ("CallExpr", "CXXMemberCallExpr"):
            name, sig = callee_of(node)
            reason = self._BANNED_CALLS.get(name)
            if reason is not None:
                ctx.add(self, cursor, f"call to '{name}': {reason}")
            elif name == "now" and ("clock" in sig or "time_point" in sig):
                ctx.add(self, cursor,
                        "call to a chrono clock's now(): wall/monotonic time "
                        "must not reach simulation state")
        elif kind in ("VarDecl", "CXXConstructExpr", "CXXTemporaryObjectExpr"):
            qual = desugared_type(node)
            if "random_device" in qual:
                ctx.add(self, cursor,
                        "std::random_device: seeds must be explicit and "
                        "reproducible")
            elif self._HASH_PTR.search(qual):
                ctx.add(self, cursor,
                        "std::hash over a pointer type: heap addresses vary "
                        "across runs (ASLR), so the hash is nondeterministic")
        elif kind == "CXXForRangeStmt":
            self._visit_range_for(cursor, ctx)

    def _visit_range_for(self, cursor: Cursor, ctx: TuContext) -> None:
        # The synthesized __range/__begin/__end DeclStmts are direct
        # children; the loop body is the last child and must not be
        # scanned (it may declare unordered containers legitimately).
        kids = children(cursor.node)
        for child in kids[:-1] if kids else []:
            for sub in iter_subtree(child):
                if sub.get("kind") == "VarDecl" and \
                        self._UNORDERED.search(desugared_type(sub)):
                    ctx.add(self, cursor,
                            "range-for over an unordered container: iteration "
                            "order is hash-seed dependent and must not feed "
                            "results")
                    return


class RaceCheck(Check):
    """A3: unsynchronized shared-state writes in pool-submitted lambdas.

    Fires on lambdas handed to `submit`/`parallel_for`/`enqueue` that
    mutate state captured from outside the lambda.  The disjoint-slice
    idiom (writing through a subscript indexed by the task's own
    parameter, as run_sweep does) is allowed; so are atomics and bodies
    that take a lock.
    """

    id = "a3-race"
    description = ("pool-submitted lambda mutates shared state captured from "
                   "the enclosing scope without synchronization")
    suggestion = ("give each task its own output slot indexed by the task "
                  "parameter, or guard the shared state with a mutex/atomic")
    scope_dirs = ("src/",)

    _SUBMITTERS = {"submit", "parallel_for", "enqueue"}
    _LOCKS = re.compile(r"\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b")

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if cursor.kind not in ("CallExpr", "CXXMemberCallExpr"):
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        name, _ = callee_of(cursor.node)
        if name not in self._SUBMITTERS:
            return
        for sub in iter_subtree(cursor.node):
            if sub.get("kind") == "LambdaExpr":
                self._visit_lambda(sub, cursor, ctx)

    def _visit_lambda(self, lam: JsonNode, cursor: Cursor, ctx: TuContext) -> None:
        declared: set = set()
        params: set = set()
        for sub in iter_subtree(lam):
            kind = sub.get("kind", "")
            sub_id = sub.get("id")
            if kind == "ParmVarDecl":
                params.add(sub_id)
                declared.add(sub_id)
            elif kind.endswith("VarDecl"):
                declared.add(sub_id)
                if self._LOCKS.search(desugared_type(sub)):
                    return  # body takes a lock: treated as synchronized
        reported: set = set()
        for sub in iter_subtree(lam):
            kind = sub.get("kind")
            target: Optional[JsonNode] = None
            if kind == "BinaryOperator" and sub.get("opcode") == "=":
                target = first_expr_child(sub)
            elif kind == "CompoundAssignOperator":
                target = first_expr_child(sub)
            elif kind == "UnaryOperator" and sub.get("opcode") in ("++", "--"):
                target = first_expr_child(sub)
            if target is None:
                continue
            victim = self._external_write_target(target, declared, params)
            if victim and victim not in reported:
                reported.add(victim)
                ctx.add(self, cursor,
                        f"lambda submitted to '{callee_of(cursor.node)[0]}' "
                        f"mutates captured '{victim}' without synchronization")

    @staticmethod
    def _external_write_target(lhs: JsonNode, declared: set,
                               params: set) -> Optional[str]:
        external: Optional[str] = None
        for sub in iter_subtree(lhs):
            kind = sub.get("kind")
            if kind == "DeclRefExpr":
                ref = sub.get("referencedDecl")
                if not isinstance(ref, dict):
                    continue
                if ref.get("id") in params:
                    return None  # indexed by the task parameter: disjoint slice
                if ref.get("id") not in declared and \
                        ref.get("kind", "").endswith("VarDecl"):
                    if "atomic" in (ref.get("type") or {}).get("qualType", ""):
                        return None
                    external = external or ref.get("name") or "<captured>"
            elif kind == "CXXThisExpr":
                external = external or "this->"
        return external


class StateCheck(Check):
    """A4: mutable namespace-scope / static-local state in src/wl.

    Wear-leveling schemes are instantiated per thread inside sweeps; any
    mutable static state silently couples those instances and breaks
    determinism of parallel runs.
    """

    id = "a4-state"
    description = ("mutable namespace-scope or static-local state inside a "
                   "wear-leveling scheme")
    suggestion = ("move the state into the scheme object (per-instance), or "
                  "make it constexpr/const if it is genuinely immutable")
    scope_dirs = ("src/wl",)

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if cursor.kind != "VarDecl":
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        node = cursor.node
        if node.get("constexpr") is True:
            return
        if _is_const_qual(desugared_type(node)) or \
                _is_const_qual(qual_type(node)):
            return
        in_function = cursor.enclosing_function() is not None
        if in_function:
            if node.get("storageClass") == "static":
                ctx.add(self, cursor,
                        f"static local '{node.get('name', '?')}' is mutable "
                        "state shared across scheme instances")
        else:
            # Namespace/class scope. Class-scope VarDecls are static data
            # members; FieldDecls (per-instance) are a different kind and
            # are never flagged.
            ctx.add(self, cursor,
                    f"namespace-scope variable '{node.get('name', '?')}' is "
                    "mutable state shared across scheme instances")


class UncheckedCheck(Check):
    """A5: public WearLeveler entry points with unvalidated parameters.

    Whole-program pass: a function "reaches a check" when its body calls
    the check family directly or (transitively, across all analyzed TUs)
    calls a function that does.  Callees whose bodies were never seen are
    trusted.  Entry points are the WearLeveler interface surface on
    classes deriving from (or named) *WearLeveler, restricted to methods
    that actually *use* an arithmetic/address parameter.
    """

    id = "a5-unchecked"
    description = ("public WearLeveler entry point uses a parameter whose "
                   "domain is never validated by an SRBSG_CHECK/check_* call")
    suggestion = ("validate the parameter domain on entry with SRBSG_CHECK "
                  "or the check_* family (common/check.hpp)")
    scope_dirs = ("src/wl",)

    _SURFACE = {"translate", "write", "write_repeated", "read",
                "set_rate_boost"}
    _FUNC_KINDS = {"FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        kind = cursor.kind
        node = cursor.node
        if ctx.rel(cursor.file) is None:
            return  # system headers: callees there resolve as trusted
        if kind == "CXXRecordDecl":
            self._note_class(node, ctx)
            return
        if kind not in self._FUNC_KINDS:
            return
        body = self._body_of(node)
        if body is None:
            return
        name = node.get("name", "") or ""
        sig = qual_type(node)
        cls = self._enclosing_class(cursor, ctx)
        key = f"{cls}::{name}|{sig}"
        record = ctx.a5_functions.setdefault(
            key, {"name": name, "sig": sig, "checks": False, "calls": set()})
        for sub in iter_subtree(body):
            if sub.get("kind") in ("CallExpr", "CXXMemberCallExpr",
                                   "CXXOperatorCallExpr"):
                callee, callee_sig = callee_of(sub)
                if callee in CHECK_FAMILY:
                    record["checks"] = True
                elif callee:
                    record["calls"].add((callee, callee_sig))
        self._note_entry(cursor, ctx, node, body, name, sig, cls, key)

    # -- class bookkeeping -------------------------------------------------

    def _note_class(self, node: JsonNode, ctx: TuContext) -> None:
        name = node.get("name", "") or ""
        if not name:
            return
        node_id = node.get("id")
        if isinstance(node_id, str):
            ctx.a5_class_ids[node_id] = name
        if not node.get("completeDefinition"):
            return
        is_wl = name.endswith("WearLeveler")
        for base in node.get("bases") or []:
            base_qual = (base.get("type") or {}).get("qualType", "")
            if "WearLeveler" in base_qual:
                is_wl = True
            elif ctx.a5_class_wl.get(base_qual.split("::")[-1].split("<")[0]):
                is_wl = True  # one level of transitivity through seen bases
        ctx.a5_class_wl[name] = is_wl or ctx.a5_class_wl.get(name, False)

    def _class_is_wl(self, ctx: TuContext, cls: str) -> bool:
        return bool(ctx.a5_class_wl.get(cls))

    def _enclosing_class(self, cursor: Cursor, ctx: TuContext) -> str:
        record = cursor.nearest("CXXRecordDecl")
        if record is not None:
            return record.get("name", "") or ""
        # Out-of-line definition: clang emits parentDeclContextId when the
        # lexical and semantic decl contexts differ.
        parent_id = cursor.node.get("parentDeclContextId")
        if isinstance(parent_id, str):
            return ctx.a5_class_ids.get(parent_id, "")
        return ""

    # -- entry-point bookkeeping -------------------------------------------

    def _note_entry(self, cursor: Cursor, ctx: TuContext, node: JsonNode,
                    body: JsonNode, name: str, sig: str, cls: str,
                    key: str) -> None:
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        is_ctor = cursor.kind == "CXXConstructorDecl"
        if not is_ctor and name not in self._SURFACE:
            return
        if is_ctor:
            cls = cls or name
        if not cls or not self._class_is_wl(ctx, cls):
            return
        param = self._used_arith_param(node, body)
        if param is None:
            return
        rel = ctx.rel(cursor.file)
        if rel is None:
            return
        ctx.a5_entries.append({
            "key": key,
            "file": rel,
            "line": cursor.line or 0,
            "context": name,
            "message": (f"entry point '{cls}::{name}' uses parameter "
                        f"'{param}' without reaching an "
                        "SRBSG_CHECK/check_* validation"),
        })

    @staticmethod
    def _body_of(node: JsonNode) -> Optional[JsonNode]:
        for child in children(node):
            if child.get("kind") == "CompoundStmt":
                return child
        return None

    def _used_arith_param(self, node: JsonNode,
                          body: JsonNode) -> Optional[str]:
        """Name of the first arithmetic/address parameter the body actually
        uses (cast-to-void 'uses' excluded), else None."""
        param_ids: dict = {}
        for child in children(node):
            if child.get("kind") != "ParmVarDecl":
                continue
            qual = desugared_type(child)
            if type_width(child.get("type")) is not None or \
                    _ADDR_TYPE.search(qual_type(child)) or _ADDR_TYPE.search(qual):
                param_ids[child.get("id")] = child.get("name", "") or "<param>"
        if not param_ids:
            return None
        voided: set = set()
        for sub in iter_subtree(body):
            if sub.get("kind") == "CStyleCastExpr" and \
                    qual_type(sub) == "void":
                for inner in iter_subtree(sub):
                    if inner.get("kind") == "DeclRefExpr":
                        ref = inner.get("referencedDecl") or {}
                        voided.add(ref.get("id"))
        for sub in iter_subtree(body):
            if sub.get("kind") == "DeclRefExpr":
                ref = sub.get("referencedDecl") or {}
                ref_id = ref.get("id")
                if ref_id in param_ids and ref_id not in voided:
                    return param_ids[ref_id]
        return None

    # -- whole-program closure ---------------------------------------------

    @staticmethod
    def finalize(merged_functions: dict, merged_entries: list,
                 suggestion: str) -> list[dict]:
        """Fixed-point 'reaches a check' closure, then entry-point findings."""
        functions = merged_functions
        by_name_sig: dict = {}
        by_name: dict = {}
        for key, rec in functions.items():
            by_name_sig.setdefault((rec["name"], rec["sig"]), []).append(key)
            by_name.setdefault(rec["name"], []).append(key)
        checking = {k for k, rec in functions.items() if rec["checks"]}

        def callee_checks(callee: tuple) -> bool:
            name, sig = callee
            keys = by_name_sig.get((name, sig)) if sig else None
            if not keys:
                keys = by_name.get(name)
            if not keys:
                return True  # body never seen: trusted
            return any(k in checking for k in keys)

        changed = True
        while changed:
            changed = False
            for key, rec in functions.items():
                if key in checking:
                    continue
                if any(callee_checks(c) for c in rec["calls"]):
                    checking.add(key)
                    changed = True

        findings = []
        seen: set = set()
        for entry in merged_entries:
            if entry["key"] in checking:
                continue
            dedup = (entry["file"], entry["line"], entry["message"])
            if dedup in seen:
                continue
            seen.add(dedup)
            findings.append({
                "check": UncheckedCheck.id,
                "file": entry["file"],
                "line": entry["line"],
                "message": entry["message"],
                "suggestion": suggestion,
                "context": entry["context"],
            })
        return findings


class BatchCheck(Check):
    """A6: per-write loops on the batched write path.

    write_batch()/write_cycle() hoist translation state, remap-counter
    arithmetic, and bank pointers out of the per-write dispatch; a raw
    loop that issues WearLeveler/MemoryController write() calls one at a
    time and discards each outcome re-pays that cost every iteration.
    Loops that *use* the outcome (attack probes reading stalls, tests
    asserting per-write invariants) are the sanctioned per-write
    consumers and are never flagged.
    """

    id = "a6-batch"
    description = ("raw loop issues per-write WearLeveler/MemoryController "
                   "write() calls with the outcome discarded")
    suggestion = ("collect the addresses and issue one write_batch() — or "
                  "write_cycle() for a periodic pattern — so translation "
                  "state is hoisted out of the loop (src/wl/batch.hpp)")
    scope_dirs = ("bench/", "src/attack")

    _LOOPS = ("ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt")
    _RECEIVER = re.compile(r"\b(WearLeveler|MemoryController)\b")
    # Nodes clang interposes between a discarded call and its statement
    # context; a (void)-cast still discards the outcome.
    _WRAPPERS = {"ExprWithCleanups", "CXXBindTemporaryExpr", "ConstantExpr",
                 "ParenExpr", "ImplicitCastExpr", "MaterializeTemporaryExpr"}
    _STMT_CONTEXTS = {"CompoundStmt", "ForStmt", "WhileStmt", "DoStmt",
                      "CXXForRangeStmt", "CaseStmt", "DefaultStmt",
                      "LabelStmt"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if cursor.kind != "CXXMemberCallExpr":
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        member = self._member_expr(cursor.node)
        if member is None or member.get("name") != "write":
            return
        match = self._RECEIVER.search(self._receiver_type(member))
        if match is None:
            return
        if cursor.nearest(*self._LOOPS) is None:
            return
        if not self._discarded(cursor):
            return
        ctx.add(self, cursor,
                f"loop issues '{match.group(1)}::write()' per iteration "
                "and discards the outcome")

    @staticmethod
    def _member_expr(call: JsonNode) -> Optional[JsonNode]:
        head = first_expr_child(call)
        if head is None:
            return None
        for node in iter_subtree(head):
            if node.get("kind") == "MemberExpr":
                return node
        return None

    @staticmethod
    def _receiver_type(member: JsonNode) -> str:
        base = first_expr_child(member)
        return desugared_type(base) or qual_type(base)

    def _discarded(self, cursor: Cursor) -> bool:
        for parent in reversed(cursor.parents):
            kind = parent.get("kind", "")
            if kind in self._WRAPPERS:
                continue
            if kind == "CStyleCastExpr" and qual_type(parent) == "void":
                continue
            return kind in self._STMT_CONTEXTS
        return False


class TelemetryCheck(Check):
    """A7: ad-hoc progress prints inside library code.

    The telemetry subsystem (src/telemetry) is the sanctioned
    observability channel for library code: counters and events that
    serialize deterministically and cost one null-pointer branch when
    disabled.  A library function writing progress straight to
    std::cout/std::cerr (or through the printf family) bypasses it —
    the output interleaves nondeterministically under the sweep pool,
    cannot be disabled for benchmarking, and never reaches the JSONL
    trace.  bench/ and tools binaries print by design and are out of
    scope.
    """

    id = "a7-telemetry"
    description = ("library code prints progress directly to stdout/stderr "
                   "instead of going through the telemetry subsystem")
    suggestion = ("emit a telemetry counter/event (src/telemetry) or take an "
                  "std::ostream& parameter; direct std::cout/printf output "
                  "belongs in bench/ and tools binaries only")
    scope_dirs = ("src/",)

    _STREAMS = {"cout", "cerr", "clog"}
    _PRINTF_FAMILY = {"printf", "fprintf", "vprintf", "vfprintf", "puts",
                      "fputs", "putchar", "fputc", "putc"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        node = cursor.node
        if cursor.kind == "DeclRefExpr":
            ref = node.get("referencedDecl")
            if not isinstance(ref, dict):
                return
            name = ref.get("name")
            if name in self._STREAMS and \
                    "ostream" in (ref.get("type") or {}).get("qualType", ""):
                ctx.add(self, cursor,
                        f"direct use of 'std::{name}' inside library code")
        elif cursor.kind == "CallExpr":
            name, _ = callee_of(node)
            if name in self._PRINTF_FAMILY:
                ctx.add(self, cursor,
                        f"call to '{name}': stdio progress printing inside "
                        "library code")


ALL_CHECKS = [WidthCheck, DeterminismCheck, RaceCheck, StateCheck,
              UncheckedCheck, BatchCheck, TelemetryCheck]
CHECKS_BY_ID = {c.id: c for c in ALL_CHECKS}
