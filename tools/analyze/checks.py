"""Check registry for srbsg-analyze.

Each check consumes clang JSON-AST cursors (see engine.py) and reports
findings as plain dicts: {check, file, line, message, suggestion,
context}.  Checks are written to under-report rather than crash when a
clang release changes a dump detail: every field access is optional.

Scoping: a check's `scope_dirs` lists the src/ and bench/ subtrees it
patrols.  Files inside the repository but outside those trees (the
analyzer's own fixture tree) are in scope for every check, so
seeded-violation fixtures exercise each check without living in src/.

The conservatism direction is fixed and intentional: calls whose bodies
the analyzer has not seen are *trusted* (assumed to validate), lambda
writes indexed by the task parameter are *allowed*, literal narrowings
that provably fit are *ignored*.  False positives erode the baseline
discipline faster than false negatives erode coverage — the runtime
auditor (src/audit) backstops what static analysis lets through.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

import graph
from engine import (Cursor, JsonNode, callee_of, children, desugared_type,
                    first_expr_child, integer_literal_value, iter_subtree,
                    qual_type, type_width)

CHECK_FAMILY = {
    "check", "check_eq", "check_ne", "check_lt", "check_le", "check_gt",
    "check_ge", "checked_narrow",
}

_ADDR_TYPE = re.compile(r"\b(La|Ia|Pa|Addr<|Ns)\b")

# Function-declaration kinds the interprocedural checks summarize.
_FUNC_KINDS = ("FunctionDecl", "CXXMethodDecl")

# Kinds that open a new function-ish scope: iter_own_stmts yields them
# but does not descend, so a function's facts never absorb statements
# that belong to a nested lambda / local class / nested function.
_NEST_BARRIERS = {"LambdaExpr", "FunctionDecl", "CXXMethodDecl",
                  "CXXConstructorDecl", "CXXDestructorDecl",
                  "CXXConversionDecl", "CXXRecordDecl", "ClassTemplateDecl",
                  "FunctionTemplateDecl"}

# Value-preserving wrapper nodes clang interposes between an expression
# and the DeclRefExpr/MemberExpr the checks care about.  Only peeled when
# they have exactly one expression child, so multi-arg constructors and
# conditional operators are never mistaken for a plain reference.
_EXPR_WRAPPERS = {"ImplicitCastExpr", "ParenExpr", "ExprWithCleanups",
                  "ConstantExpr", "MaterializeTemporaryExpr",
                  "CXXBindTemporaryExpr", "CXXConstructExpr",
                  "CXXFunctionalCastExpr", "CXXStaticCastExpr"}

_TYPE_NOISE = re.compile(r"\b(const|volatile|struct|class|enum)\b")


def _is_const_qual(qual: str) -> bool:
    return qual.startswith("const ") or qual.endswith(" const")


def iter_own_stmts(node: JsonNode) -> Iterator[JsonNode]:
    """Pre-order over `node`'s subtree, not descending into nested
    function-ish scopes (see _NEST_BARRIERS).  The root is always
    yielded and descended into, whatever its kind."""
    stack: list[tuple[JsonNode, bool]] = [(node, True)]
    while stack:
        cur, is_root = stack.pop()
        if not isinstance(cur, dict):
            continue
        yield cur
        if not is_root and cur.get("kind", "") in _NEST_BARRIERS:
            continue
        for child in reversed(children(cur)):
            stack.append((child, False))


def strip_expr(node: Optional[JsonNode]) -> Optional[JsonNode]:
    """Peels single-child wrapper nodes; returns the innermost node."""
    while isinstance(node, dict):
        if node.get("kind") in _EXPR_WRAPPERS:
            kids = [c for c in children(node)
                    if c.get("kind", "") and
                    not c.get("kind", "").endswith("Comment")]
            if len(kids) == 1:
                node = kids[0]
                continue
        return node
    return None


def _expr_children(node: JsonNode) -> list:
    return [c for c in children(node)
            if c.get("kind", "") and not c.get("kind", "").endswith("Comment")]


def _body_of(node: JsonNode) -> Optional[JsonNode]:
    for child in children(node):
        if child.get("kind") == "CompoundStmt":
            return child
    return None


def _member_of(call: JsonNode) -> Optional[JsonNode]:
    """The MemberExpr naming a member call's target, or None."""
    head = first_expr_child(call)
    if head is None:
        return None
    for node in iter_subtree(head):
        if node.get("kind") == "MemberExpr":
            return node
    return None


def _class_of_type(qual: str) -> str:
    """Bare class name of a (possibly qualified/templated) type string."""
    qual = _TYPE_NOISE.sub("", qual or "")
    qual = qual.replace("*", " ").replace("&", " ").strip()
    base = qual.split("<")[0].strip()
    if not base:
        return ""
    return base.split("::")[-1].strip()


def _field_key(member: JsonNode, encl_cls: str) -> str:
    """`Cls::field` key for a MemberExpr, best effort."""
    name = member.get("name", "") or ""
    base = strip_expr(first_expr_child(member))
    cls_name = ""
    if base is not None:
        if base.get("kind") == "CXXThisExpr":
            cls_name = encl_cls
        else:
            cls_name = _class_of_type(desugared_type(base) or qual_type(base))
    return f"{cls_name}::{name}" if cls_name else name


def _unwrap_reason(reason) -> str:
    """Field name at the end of a solve_param_escapes via-chain."""
    while isinstance(reason, (list, tuple)) and reason and reason[0] == "via":
        reason = reason[2]
    if isinstance(reason, (list, tuple)) and len(reason) >= 2:
        return str(reason[1])
    return "?"


class TuContext:
    """Per-translation-unit state shared by the checks."""

    def __init__(self, repo_root: str, src_root: str):
        self.repo_root = repo_root.rstrip("/") + "/"
        self.src_root = src_root.rstrip("/") + "/"
        self.findings: list[dict] = []
        # Class name -> derives-from-*WearLeveler, and decl id -> class name
        # (for parentDeclContextId resolution of out-of-line definitions).
        # Maintained by note_node() for every check that needs class info.
        self.class_wl: dict[str, bool] = {}
        self.class_ids: dict[str, str] = {}
        self._rel_cache: dict[str, Optional[str]] = {}

    def note_node(self, cursor: Cursor) -> None:
        """Shared per-node bookkeeping, run once before the check visitors
        (class hierarchy facts used by a5's entry points and by the
        interprocedural checks' `Cls::name` keys)."""
        if cursor.kind != "CXXRecordDecl":
            return
        if self.rel(cursor.file) is None:
            return  # system headers: classes there resolve as trusted
        node = cursor.node
        name = node.get("name", "") or ""
        if not name:
            return
        node_id = node.get("id")
        if isinstance(node_id, str):
            self.class_ids[node_id] = name
        if not node.get("completeDefinition"):
            return
        is_wl = name.endswith("WearLeveler")
        for base in node.get("bases") or []:
            base_qual = (base.get("type") or {}).get("qualType", "")
            if "WearLeveler" in base_qual:
                is_wl = True
            elif self.class_wl.get(base_qual.split("::")[-1].split("<")[0]):
                is_wl = True  # one level of transitivity through seen bases
        self.class_wl[name] = is_wl or self.class_wl.get(name, False)

    def enclosing_class(self, cursor: Cursor) -> str:
        """Class owning the nearest function-ish scope (or the node itself
        for out-of-line method declarations)."""
        record = cursor.nearest("CXXRecordDecl")
        if record is not None:
            return record.get("name", "") or ""
        # Out-of-line definition: clang emits parentDeclContextId when the
        # lexical and semantic decl contexts differ.
        fn = cursor.enclosing_function()
        node = fn if fn is not None else cursor.node
        parent_id = node.get("parentDeclContextId")
        if isinstance(parent_id, str):
            return self.class_ids.get(parent_id, "")
        return ""

    def deps(self) -> list[str]:
        """Repo-relative paths this TU's findings/summaries were derived
        from (cache invalidation inputs)."""
        return sorted({r for r in self._rel_cache.values() if r})

    def rel(self, file: Optional[str]) -> Optional[str]:
        """Repo-relative path, or None for files outside the repository."""
        if not file:
            return None
        cached = self._rel_cache.get(file, "?")
        if cached != "?":
            return cached
        rel: Optional[str] = None
        if file.startswith(self.repo_root):
            rel = file[len(self.repo_root):]
        elif not file.startswith("/"):
            rel = file
        self._rel_cache[file] = rel
        return rel

    def in_scope(self, file: Optional[str], scope_dirs: tuple) -> bool:
        rel = self.rel(file)
        if rel is None:
            return False
        if not (rel.startswith("src/") or rel.startswith("bench/")):
            return True  # fixture / tool sources: every check applies
        if not scope_dirs:
            return True
        return any(rel.startswith(d) for d in scope_dirs)

    def add(self, check: "Check", cursor: Cursor, message: str,
            context: str = "") -> None:
        rel = self.rel(cursor.file)
        if rel is None:
            return
        if not context:
            fn = cursor.enclosing_function()
            if fn is not None:
                context = fn.get("name", "") or ""
        self.findings.append({
            "check": check.id,
            "file": rel,
            "line": cursor.line or 0,
            "message": message,
            "suggestion": check.suggestion,
            "context": context,
        })


class Check:
    """Base class.  One instance is created per TU; per-TU state lives on
    the instance.  Checks that reason across TUs implement summarize()
    (JSON-able per-TU facts, round-tripped through the incremental
    cache) and the classmethod finalize_program() (whole-program solve
    over every TU's summary, see graph.py)."""

    id = ""
    description = ""
    suggestion = ""
    scope_dirs: tuple = ()

    def begin_tu(self, ctx: TuContext) -> None:
        """Hook before the walk of one TU starts."""

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:  # pragma: no cover
        raise NotImplementedError

    def summarize(self, ctx: TuContext) -> Optional[dict]:
        """JSON-serializable whole-program facts for this TU, or None."""
        return None

    @classmethod
    def finalize_program(cls, tus: list) -> list[dict]:
        """Findings from the merged summaries; `tus` is [(rel, summary)]
        for every TU whose summarize() returned facts for this check."""
        return []


class WidthCheck(Check):
    """A1: address/wear values funneled through a sub-64-bit type.

    The Table-I grid runs N = 2^22 lines x 1e8-write endurance; cumulative
    write counts and flat physical offsets overflow 32 bits by
    construction, so *any* 64->sub-64 integral conversion in the address
    paths is suspect.  Literal sources that provably fit are ignored;
    conversions inside a `checked_narrow` helper are the sanctioned sink.
    """

    id = "a1-width"
    description = ("64-bit address/wear value narrowed to a sub-64-bit type "
                   "in the mapping/simulation paths")
    suggestion = ("keep line/address/wear arithmetic in u64, or prove the "
                  "range and convert via srbsg::checked_narrow<T>() "
                  "(common/check.hpp)")
    scope_dirs = ("src/wl", "src/mapping", "src/sim")

    _CAST_KINDS = {"ImplicitCastExpr", "CStyleCastExpr", "CXXStaticCastExpr",
                   "CXXFunctionalCastExpr"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        node = cursor.node
        if cursor.kind not in self._CAST_KINDS:
            return
        if node.get("castKind") != "IntegralCast":
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        fn = cursor.enclosing_function()
        if fn is not None and fn.get("name") == "checked_narrow":
            return  # the checked-narrow helper is the sanctioned sink
        dst_width = type_width(node.get("type"))
        src_node = first_expr_child(node)
        src_width = type_width(src_node.get("type")) if src_node else None
        if dst_width is None or src_width is None:
            return
        if not (src_width >= 64 > dst_width):
            return
        if src_node is not None:
            literal = integer_literal_value(src_node)
            if literal is not None and self._fits(literal, node, dst_width):
                return
        explicit = "" if cursor.kind == "ImplicitCastExpr" else "explicit "
        ctx.add(self, cursor,
                f"{explicit}narrowing conversion of a {src_width}-bit value to "
                f"'{qual_type(node)}' ({dst_width} bits)")

    @staticmethod
    def _fits(value: int, cast_node: JsonNode, dst_width: int) -> bool:
        qual = desugared_type(cast_node)
        if qual.startswith("unsigned") or qual in ("bool", "char"):
            return 0 <= value < (1 << dst_width)
        return -(1 << (dst_width - 1)) <= value < (1 << (dst_width - 1))


class DeterminismCheck(Check):
    """A2: nondeterminism sources the regex linter can only approximate.

    AST-accurate versions of lint R1 (randomness / wall clock) plus the
    classes regexes cannot see: pointer hashing (heap addresses vary run
    to run under ASLR) and unordered-container iteration feeding results.
    """

    id = "a2-determinism"
    description = ("nondeterminism source: randomness, wall clock, pointer "
                   "hashing, or unordered-container iteration order")
    suggestion = ("thread an explicitly seeded srbsg::Rng through the call "
                  "path; iterate ordered containers (or sort keys first) "
                  "wherever iteration order can reach results")
    # Simulation state lives under src/; bench/ binaries time themselves
    # with wall clocks by design and are out of scope.
    scope_dirs = ("src/",)

    _BANNED_CALLS = {
        "rand": "rand() is seed-hidden global state",
        "srand": "srand() reseeds hidden global state",
        "random": "random() is seed-hidden global state",
        "drand48": "drand48() is seed-hidden global state",
        "lrand48": "lrand48() is seed-hidden global state",
        "time": "time() reads the wall clock",
        "clock": "clock() reads the process clock",
        "gettimeofday": "gettimeofday() reads the wall clock",
        "clock_gettime": "clock_gettime() reads the wall clock",
        "timespec_get": "timespec_get() reads the wall clock",
    }
    _HASH_PTR = re.compile(r"\bstd::hash<[^<>]*\*\s*>")
    _UNORDERED = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        kind = cursor.kind
        node = cursor.node
        if kind in ("CallExpr", "CXXMemberCallExpr"):
            name, sig = callee_of(node)
            reason = self._BANNED_CALLS.get(name)
            if reason is not None:
                ctx.add(self, cursor, f"call to '{name}': {reason}")
            elif name == "now" and ("clock" in sig or "time_point" in sig):
                ctx.add(self, cursor,
                        "call to a chrono clock's now(): wall/monotonic time "
                        "must not reach simulation state")
        elif kind in ("VarDecl", "CXXConstructExpr", "CXXTemporaryObjectExpr"):
            qual = desugared_type(node)
            if "random_device" in qual:
                ctx.add(self, cursor,
                        "std::random_device: seeds must be explicit and "
                        "reproducible")
            elif self._HASH_PTR.search(qual):
                ctx.add(self, cursor,
                        "std::hash over a pointer type: heap addresses vary "
                        "across runs (ASLR), so the hash is nondeterministic")
        elif kind == "CXXForRangeStmt":
            self._visit_range_for(cursor, ctx)

    def _visit_range_for(self, cursor: Cursor, ctx: TuContext) -> None:
        # The synthesized __range/__begin/__end DeclStmts are direct
        # children; the loop body is the last child and must not be
        # scanned (it may declare unordered containers legitimately).
        kids = children(cursor.node)
        for child in kids[:-1] if kids else []:
            for sub in iter_subtree(child):
                if sub.get("kind") == "VarDecl" and \
                        self._UNORDERED.search(desugared_type(sub)):
                    ctx.add(self, cursor,
                            "range-for over an unordered container: iteration "
                            "order is hash-seed dependent and must not feed "
                            "results")
                    return


class RaceCheck(Check):
    """A3: unsynchronized shared-state writes in pool-submitted lambdas.

    Fires on lambdas handed to `submit`/`parallel_for`/`enqueue` that
    mutate state captured from outside the lambda.  The disjoint-slice
    idiom (writing through a subscript indexed by the task's own
    parameter, as run_sweep does) is allowed; so are atomics and bodies
    that take a lock.
    """

    id = "a3-race"
    description = ("pool-submitted lambda mutates shared state captured from "
                   "the enclosing scope without synchronization")
    suggestion = ("give each task its own output slot indexed by the task "
                  "parameter, or guard the shared state with a mutex/atomic")
    scope_dirs = ("src/",)

    _SUBMITTERS = {"submit", "parallel_for", "enqueue"}
    _LOCKS = re.compile(r"\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b")

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if cursor.kind not in ("CallExpr", "CXXMemberCallExpr"):
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        name, _ = callee_of(cursor.node)
        if name not in self._SUBMITTERS:
            return
        for sub in iter_subtree(cursor.node):
            if sub.get("kind") == "LambdaExpr":
                self._visit_lambda(sub, cursor, ctx)

    def _visit_lambda(self, lam: JsonNode, cursor: Cursor, ctx: TuContext) -> None:
        declared: set = set()
        params: set = set()
        for sub in iter_subtree(lam):
            kind = sub.get("kind", "")
            sub_id = sub.get("id")
            if kind == "ParmVarDecl":
                params.add(sub_id)
                declared.add(sub_id)
            elif kind.endswith("VarDecl"):
                declared.add(sub_id)
                if self._LOCKS.search(desugared_type(sub)):
                    return  # body takes a lock: treated as synchronized
        reported: set = set()
        for sub in iter_subtree(lam):
            kind = sub.get("kind")
            target: Optional[JsonNode] = None
            if kind == "BinaryOperator" and sub.get("opcode") == "=":
                target = first_expr_child(sub)
            elif kind == "CompoundAssignOperator":
                target = first_expr_child(sub)
            elif kind == "UnaryOperator" and sub.get("opcode") in ("++", "--"):
                target = first_expr_child(sub)
            if target is None:
                continue
            victim = self._external_write_target(target, declared, params)
            if victim and victim not in reported:
                reported.add(victim)
                ctx.add(self, cursor,
                        f"lambda submitted to '{callee_of(cursor.node)[0]}' "
                        f"mutates captured '{victim}' without synchronization")

    @staticmethod
    def _external_write_target(lhs: JsonNode, declared: set,
                               params: set) -> Optional[str]:
        external: Optional[str] = None
        for sub in iter_subtree(lhs):
            kind = sub.get("kind")
            if kind == "DeclRefExpr":
                ref = sub.get("referencedDecl")
                if not isinstance(ref, dict):
                    continue
                if ref.get("id") in params:
                    return None  # indexed by the task parameter: disjoint slice
                if ref.get("id") not in declared and \
                        ref.get("kind", "").endswith("VarDecl"):
                    if "atomic" in (ref.get("type") or {}).get("qualType", ""):
                        return None
                    external = external or ref.get("name") or "<captured>"
            elif kind == "CXXThisExpr":
                external = external or "this->"
        return external


class StateCheck(Check):
    """A4: mutable namespace-scope / static-local state in src/wl.

    Wear-leveling schemes are instantiated per thread inside sweeps; any
    mutable static state silently couples those instances and breaks
    determinism of parallel runs.
    """

    id = "a4-state"
    description = ("mutable namespace-scope or static-local state inside a "
                   "wear-leveling scheme")
    suggestion = ("move the state into the scheme object (per-instance), or "
                  "make it constexpr/const if it is genuinely immutable")
    scope_dirs = ("src/wl",)

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if cursor.kind != "VarDecl":
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        node = cursor.node
        if node.get("constexpr") is True:
            return
        if _is_const_qual(desugared_type(node)) or \
                _is_const_qual(qual_type(node)):
            return
        in_function = cursor.enclosing_function() is not None
        if in_function:
            if node.get("storageClass") == "static":
                ctx.add(self, cursor,
                        f"static local '{node.get('name', '?')}' is mutable "
                        "state shared across scheme instances")
        else:
            # Namespace/class scope. Class-scope VarDecls are static data
            # members; FieldDecls (per-instance) are a different kind and
            # are never flagged.
            ctx.add(self, cursor,
                    f"namespace-scope variable '{node.get('name', '?')}' is "
                    "mutable state shared across scheme instances")


class UncheckedCheck(Check):
    """A5: public WearLeveler entry points with unvalidated parameters.

    Whole-program pass: a function "reaches a check" when its body calls
    the check family directly or (transitively, across all analyzed TUs)
    calls a function that does.  Callees whose bodies were never seen are
    trusted.  Entry points are the WearLeveler interface surface on
    classes deriving from (or named) *WearLeveler, restricted to methods
    that actually *use* an arithmetic/address parameter.
    """

    id = "a5-unchecked"
    description = ("public WearLeveler entry point uses a parameter whose "
                   "domain is never validated by an SRBSG_CHECK/check_* call")
    suggestion = ("validate the parameter domain on entry with SRBSG_CHECK "
                  "or the check_* family (common/check.hpp)")
    scope_dirs = ("src/wl",)

    _SURFACE = {"translate", "write", "write_repeated", "read",
                "set_rate_boost"}
    _VISIT_KINDS = {"FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl"}

    def __init__(self) -> None:
        self._functions: dict[str, dict] = {}
        self._entries: list[dict] = []

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        kind = cursor.kind
        node = cursor.node
        if ctx.rel(cursor.file) is None:
            return  # system headers: callees there resolve as trusted
        if kind not in self._VISIT_KINDS:
            return
        body = _body_of(node)
        if body is None:
            return
        name = node.get("name", "") or ""
        sig = qual_type(node)
        cls = ctx.enclosing_class(cursor)
        key = f"{cls}::{name}|{sig}"
        record = self._functions.setdefault(
            key, {"name": name, "sig": sig, "checks": False, "calls": set()})
        for sub in iter_subtree(body):
            if sub.get("kind") in ("CallExpr", "CXXMemberCallExpr",
                                   "CXXOperatorCallExpr"):
                callee, callee_sig = callee_of(sub)
                if callee in CHECK_FAMILY:
                    record["checks"] = True
                elif callee:
                    record["calls"].add((callee, callee_sig))
        self._note_entry(cursor, ctx, node, body, name, sig, cls, key)

    def summarize(self, ctx: TuContext) -> Optional[dict]:
        if not self._functions and not self._entries:
            return None
        functions = {key: {"name": rec["name"], "sig": rec["sig"],
                           "checks": rec["checks"],
                           "calls": sorted([list(c) for c in rec["calls"]])}
                     for key, rec in self._functions.items()}
        return {"functions": functions, "entries": self._entries}

    def _class_is_wl(self, ctx: TuContext, cls: str) -> bool:
        return bool(ctx.class_wl.get(cls))

    # -- entry-point bookkeeping -------------------------------------------

    def _note_entry(self, cursor: Cursor, ctx: TuContext, node: JsonNode,
                    body: JsonNode, name: str, sig: str, cls: str,
                    key: str) -> None:
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        is_ctor = cursor.kind == "CXXConstructorDecl"
        if not is_ctor and name not in self._SURFACE:
            return
        if is_ctor:
            cls = cls or name
        if not cls or not self._class_is_wl(ctx, cls):
            return
        param = self._used_arith_param(node, body)
        if param is None:
            return
        rel = ctx.rel(cursor.file)
        if rel is None:
            return
        self._entries.append({
            "key": key,
            "file": rel,
            "line": cursor.line or 0,
            "context": name,
            "message": (f"entry point '{cls}::{name}' uses parameter "
                        f"'{param}' without reaching an "
                        "SRBSG_CHECK/check_* validation"),
        })

    def _used_arith_param(self, node: JsonNode,
                          body: JsonNode) -> Optional[str]:
        """Name of the first arithmetic/address parameter the body actually
        uses (cast-to-void 'uses' excluded), else None."""
        param_ids: dict = {}
        for child in children(node):
            if child.get("kind") != "ParmVarDecl":
                continue
            qual = desugared_type(child)
            if type_width(child.get("type")) is not None or \
                    _ADDR_TYPE.search(qual_type(child)) or _ADDR_TYPE.search(qual):
                param_ids[child.get("id")] = child.get("name", "") or "<param>"
        if not param_ids:
            return None
        voided: set = set()
        for sub in iter_subtree(body):
            if sub.get("kind") == "CStyleCastExpr" and \
                    qual_type(sub) == "void":
                for inner in iter_subtree(sub):
                    if inner.get("kind") == "DeclRefExpr":
                        ref = inner.get("referencedDecl") or {}
                        voided.add(ref.get("id"))
        for sub in iter_subtree(body):
            if sub.get("kind") == "DeclRefExpr":
                ref = sub.get("referencedDecl") or {}
                ref_id = ref.get("id")
                if ref_id in param_ids and ref_id not in voided:
                    return param_ids[ref_id]
        return None

    # -- whole-program closure ---------------------------------------------

    @classmethod
    def finalize_program(cls, tus: list) -> list[dict]:
        """Fixed-point 'reaches a check' closure, then entry-point findings."""
        merged = graph.merge_function_maps(tus, "functions")
        checking = graph.solve_check_closure(graph.CallGraph(merged))
        findings = []
        seen: set = set()
        for _rel, summary in tus:
            for entry in summary.get("entries", []):
                if entry["key"] in checking:
                    continue
                dedup = (entry["file"], entry["line"], entry["message"])
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append({
                    "check": cls.id,
                    "file": entry["file"],
                    "line": entry["line"],
                    "message": entry["message"],
                    "suggestion": cls.suggestion,
                    "context": entry["context"],
                })
        return findings


class BatchCheck(Check):
    """A6: per-write loops on the batched write path.

    write_batch()/write_cycle() hoist translation state, remap-counter
    arithmetic, and bank pointers out of the per-write dispatch; a raw
    loop that issues WearLeveler/MemoryController write() calls one at a
    time and discards each outcome re-pays that cost every iteration.
    Loops that *use* the outcome (attack probes reading stalls, tests
    asserting per-write invariants) are the sanctioned per-write
    consumers and are never flagged.
    """

    id = "a6-batch"
    description = ("raw loop issues per-write WearLeveler/MemoryController "
                   "write() calls with the outcome discarded")
    suggestion = ("collect the addresses and issue one write_batch() — or "
                  "write_cycle() for a periodic pattern — so translation "
                  "state is hoisted out of the loop (src/wl/batch.hpp)")
    scope_dirs = ("bench/", "src/attack")

    _LOOPS = ("ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt")
    _RECEIVER = re.compile(r"\b(WearLeveler|MemoryController)\b")
    # Nodes clang interposes between a discarded call and its statement
    # context; a (void)-cast still discards the outcome.
    _WRAPPERS = {"ExprWithCleanups", "CXXBindTemporaryExpr", "ConstantExpr",
                 "ParenExpr", "ImplicitCastExpr", "MaterializeTemporaryExpr"}
    _STMT_CONTEXTS = {"CompoundStmt", "ForStmt", "WhileStmt", "DoStmt",
                      "CXXForRangeStmt", "CaseStmt", "DefaultStmt",
                      "LabelStmt"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if cursor.kind != "CXXMemberCallExpr":
            return
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        member = self._member_expr(cursor.node)
        if member is None or member.get("name") != "write":
            return
        match = self._RECEIVER.search(self._receiver_type(member))
        if match is None:
            return
        if cursor.nearest(*self._LOOPS) is None:
            return
        if not self._discarded(cursor):
            return
        ctx.add(self, cursor,
                f"loop issues '{match.group(1)}::write()' per iteration "
                "and discards the outcome")

    @staticmethod
    def _member_expr(call: JsonNode) -> Optional[JsonNode]:
        head = first_expr_child(call)
        if head is None:
            return None
        for node in iter_subtree(head):
            if node.get("kind") == "MemberExpr":
                return node
        return None

    @staticmethod
    def _receiver_type(member: JsonNode) -> str:
        base = first_expr_child(member)
        return desugared_type(base) or qual_type(base)

    def _discarded(self, cursor: Cursor) -> bool:
        for parent in reversed(cursor.parents):
            kind = parent.get("kind", "")
            if kind in self._WRAPPERS:
                continue
            if kind == "CStyleCastExpr" and qual_type(parent) == "void":
                continue
            return kind in self._STMT_CONTEXTS
        return False


class TelemetryCheck(Check):
    """A7: ad-hoc progress prints inside library code.

    The telemetry subsystem (src/telemetry) is the sanctioned
    observability channel for library code: counters and events that
    serialize deterministically and cost one null-pointer branch when
    disabled.  A library function writing progress straight to
    std::cout/std::cerr (or through the printf family) bypasses it —
    the output interleaves nondeterministically under the sweep pool,
    cannot be disabled for benchmarking, and never reaches the JSONL
    trace.  bench/ and tools binaries print by design and are out of
    scope.
    """

    id = "a7-telemetry"
    description = ("library code prints progress directly to stdout/stderr "
                   "instead of going through the telemetry subsystem")
    suggestion = ("emit a telemetry counter/event (src/telemetry) or take an "
                  "std::ostream& parameter; direct std::cout/printf output "
                  "belongs in bench/ and tools binaries only")
    scope_dirs = ("src/",)

    _STREAMS = {"cout", "cerr", "clog"}
    _PRINTF_FAMILY = {"printf", "fprintf", "vprintf", "vfprintf", "puts",
                      "fputs", "putchar", "fputc", "putc"}

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        if not ctx.in_scope(cursor.file, self.scope_dirs):
            return
        node = cursor.node
        if cursor.kind == "DeclRefExpr":
            ref = node.get("referencedDecl")
            if not isinstance(ref, dict):
                return
            name = ref.get("name")
            if name in self._STREAMS and \
                    "ostream" in (ref.get("type") or {}).get("qualType", ""):
                ctx.add(self, cursor,
                        f"direct use of 'std::{name}' inside library code")
        elif cursor.kind == "CallExpr":
            name, _ = callee_of(node)
            if name in self._PRINTF_FAMILY:
                ctx.add(self, cursor,
                        f"call to '{name}': stdio progress printing inside "
                        "library code")


def _join(into: list, atoms: list) -> None:
    for atom in atoms:
        if atom not in into:
            into.append(atom)


def _resolve_vars(atoms: list, vmap: dict, _seen: Optional[set] = None) -> list:
    """Replaces local ["var", id] atoms by the atoms of the variable's
    initializer/assignments; cycle-safe; unresolvable vars drop out
    (bottom)."""
    seen = _seen if _seen is not None else set()
    out: list = []
    for atom in atoms:
        if atom[0] == "var":
            vid = atom[1]
            if vid in seen:
                continue
            seen.add(vid)
            for sub in _resolve_vars(vmap.get(vid, []), vmap, seen):
                if sub not in out:
                    out.append(sub)
        elif atom not in out:
            out.append(atom)
    return out


class TaintCheck(Check):
    """A8: determinism taint reaching serialization sinks, cross-TU.

    Per TU, every function body is compressed into a taint summary:
    which nondeterminism sources (rand family, wall clocks, pointer
    hashing, pointer-to-integer casts) flow into its return value, its
    pointer/reference out-parameters, and the fields it stores.  Local
    variable flow is resolved within the TU; cross-function flow is the
    least fixed point solved in graph.solve_taint() over every TU's
    summary.  A finding fires when a sink call's arguments resolve to a
    non-empty source-label set.

    Sinks are the JSON/JSONL emitters: `write_jsonl`/`write_file`
    (src/telemetry/collector.cpp) and anything whose name contains
    json/serial (the bench_util.hpp writer family).  bench/ binaries
    time themselves with wall clocks by design, so wall-clock sources
    are only tainted when read outside bench/; randomness taints
    everywhere.
    """

    id = "a8-taint"
    description = ("nondeterministic value (randomness / wall clock / "
                   "pointer bits) flows into a serialization sink, possibly "
                   "across function boundaries")
    suggestion = ("derive serialized values from simulated time and a seeded "
                  "srbsg::Rng only; per-run values (wall clocks, heap "
                  "addresses) must not reach JSON/JSONL emitters")
    scope_dirs = ()  # sinks live in src/ (telemetry) and bench/ (JSON writers)

    _RAND = {"rand": "rand()", "random": "random()", "drand48": "drand48()",
             "lrand48": "lrand48()"}
    _WALL = {"time": "time()", "clock": "clock()",
             "gettimeofday": "gettimeofday()",
             "clock_gettime": "clock_gettime()",
             "timespec_get": "timespec_get()"}
    _SINK_EXACT = {"write_jsonl", "write_file"}
    _SINK_RE = re.compile(r"json|serial", re.I)
    _PTR_CASTS = {"ImplicitCastExpr", "CStyleCastExpr", "CXXStaticCastExpr",
                  "CXXReinterpretCastExpr", "CXXFunctionalCastExpr"}
    _HASH_PTR = DeterminismCheck._HASH_PTR
    _CALL_KINDS = ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr")

    def __init__(self) -> None:
        self._functions: dict[str, dict] = {}
        self._var_atoms: dict[str, dict] = {}  # fn key -> {var id: atoms}
        self._fn_keys: dict[str, str] = {}     # fn node id -> fn key
        self._sinks: list[dict] = []

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        kind = cursor.kind
        if kind in _FUNC_KINDS:
            self._enter_function(cursor, ctx)
        elif kind in ("CallExpr", "CXXMemberCallExpr"):
            name, _ = callee_of(cursor.node)
            if self._is_sink(name) and \
                    ctx.in_scope(cursor.file, self.scope_dirs):
                self._note_sink(cursor, ctx, name)

    def _is_sink(self, name: str) -> bool:
        if not name:
            return False
        return name in self._SINK_EXACT or bool(self._SINK_RE.search(name))

    # -- per-function summary ----------------------------------------------

    def _enter_function(self, cursor: Cursor, ctx: TuContext) -> None:
        node = cursor.node
        name = node.get("name", "") or ""
        if not name or name.startswith("operator"):
            return
        rel = ctx.rel(cursor.file)
        if rel is None:
            return
        body = _body_of(node)
        if body is None:
            return
        sig = qual_type(node)
        cls_name = ctx.enclosing_class(cursor)
        key = f"{cls_name}::{name}|{sig}"
        node_id = node.get("id")
        if isinstance(node_id, str):
            self._fn_keys[node_id] = key
        in_bench = rel.startswith("bench/")
        rec = self._functions.setdefault(
            key, {"name": name, "sig": sig, "returns": [],
                  "out_params": {}, "field_stores": {}})
        var_atoms = self._var_atoms.setdefault(key, {})
        out_params: dict = {}
        idx = -1
        for child in children(node):
            if child.get("kind") != "ParmVarDecl":
                continue
            idx += 1
            qual = qual_type(child)
            if "const" in qual:
                continue
            if "*" in qual or qual.rstrip().endswith("&"):
                out_params[child.get("id")] = idx
        for sub in iter_own_stmts(body):
            skind = sub.get("kind", "")
            if skind == "VarDecl":
                atoms = var_atoms.setdefault(sub.get("id"), [])
                qual = desugared_type(sub)
                if "random_device" in qual:
                    _join(atoms, [["src", "std::random_device"]])
                elif self._HASH_PTR.search(qual):
                    _join(atoms, [["src", "pointer hash"]])
                init = first_expr_child(sub)
                if init is not None:
                    collected: list = []
                    self._collect_atoms(init, cls_name, in_bench, collected)
                    _join(atoms, collected)
            elif skind == "ReturnStmt":
                expr = first_expr_child(sub)
                if expr is not None:
                    collected = []
                    self._collect_atoms(expr, cls_name, in_bench, collected)
                    _join(rec["returns"], collected)
            elif skind in ("BinaryOperator", "CompoundAssignOperator"):
                if skind == "BinaryOperator" and sub.get("opcode") != "=":
                    continue
                kids = _expr_children(sub)
                if len(kids) != 2:
                    continue
                collected = []
                self._collect_atoms(kids[1], cls_name, in_bench, collected)
                if collected:
                    self._record_store(kids[0], collected, var_atoms,
                                       out_params, rec, cls_name)
            elif skind in self._CALL_KINDS:
                self._note_out_args(sub, var_atoms)

    def _collect_atoms(self, expr: JsonNode, cls_name: str, in_bench: bool,
                       out: list) -> None:
        for sub in iter_own_stmts(expr):
            skind = sub.get("kind", "")
            if skind in self._PTR_CASTS:
                if sub.get("castKind") == "PointerToIntegral":
                    _join(out, [["src", "pointer-to-integer cast"]])
            elif skind in ("CXXConstructExpr", "CXXTemporaryObjectExpr"):
                qual = desugared_type(sub)
                if "random_device" in qual:
                    _join(out, [["src", "std::random_device"]])
                elif self._HASH_PTR.search(qual):
                    _join(out, [["src", "pointer hash"]])
            elif skind in self._CALL_KINDS:
                cname, csig = callee_of(sub)
                if not cname or cname.startswith("operator"):
                    continue
                if cname in self._RAND:
                    _join(out, [["src", self._RAND[cname]]])
                elif cname in self._WALL:
                    if not in_bench:
                        _join(out, [["src", self._WALL[cname]]])
                elif cname == "now" and ("clock" in csig or
                                         "time_point" in csig):
                    if not in_bench:
                        _join(out, [["src", "wall-clock now()"]])
                elif cname not in CHECK_FAMILY:
                    _join(out, [["call", cname]])
            elif skind == "DeclRefExpr":
                ref = sub.get("referencedDecl") or {}
                if ref.get("kind", "").endswith("VarDecl") and ref.get("id"):
                    _join(out, [["var", ref.get("id")]])
            elif skind == "MemberExpr":
                if "bound member function" not in qual_type(sub):
                    _join(out, [["field", _field_key(sub, cls_name)]])

    def _record_store(self, lhs: JsonNode, atoms: list, var_atoms: dict,
                      out_params: dict, rec: dict, cls_name: str) -> None:
        target = strip_expr(lhs)
        if target is None:
            return
        tkind = target.get("kind")
        if tkind == "UnaryOperator" and target.get("opcode") == "*":
            inner = strip_expr(first_expr_child(target))
            if inner is not None and inner.get("kind") == "DeclRefExpr":
                ref = inner.get("referencedDecl") or {}
                if ref.get("id") in out_params:
                    _join(rec["out_params"].setdefault(
                        str(out_params[ref.get("id")]), []), atoms)
            return
        if tkind == "DeclRefExpr":
            ref = target.get("referencedDecl") or {}
            if ref.get("id") in out_params:
                _join(rec["out_params"].setdefault(
                    str(out_params[ref.get("id")]), []), atoms)
            elif ref.get("kind", "").endswith("VarDecl") and ref.get("id"):
                _join(var_atoms.setdefault(ref.get("id"), []), atoms)
            return
        if tkind == "MemberExpr":
            base = strip_expr(first_expr_child(target))
            if base is not None and base.get("kind") == "DeclRefExpr":
                ref = base.get("referencedDecl") or {}
                if ref.get("id") in out_params:
                    _join(rec["out_params"].setdefault(
                        str(out_params[ref.get("id")]), []), atoms)
                    return
            _join(rec["field_stores"].setdefault(
                _field_key(target, cls_name), []), atoms)

    def _note_out_args(self, call: JsonNode, var_atoms: dict) -> None:
        """A variable passed (by name or address) to a call may be written
        through the callee's out-parameter: record an ["out", ...] atom."""
        cname, _ = callee_of(call)
        if not cname or cname.startswith("operator") or cname in CHECK_FAMILY:
            return
        for k, arg in enumerate(children(call)[1:]):
            target = strip_expr(arg)
            if target is not None and target.get("kind") == "UnaryOperator" \
                    and target.get("opcode") == "&":
                target = strip_expr(first_expr_child(target))
            if target is None or target.get("kind") != "DeclRefExpr":
                continue
            ref = target.get("referencedDecl") or {}
            if ref.get("kind", "").endswith("VarDecl") and ref.get("id"):
                _join(var_atoms.setdefault(ref.get("id"), []),
                      [["out", cname, k]])

    # -- sinks ---------------------------------------------------------------

    def _note_sink(self, cursor: Cursor, ctx: TuContext, name: str) -> None:
        rel = ctx.rel(cursor.file)
        if rel is None:
            return
        fn = cursor.enclosing_function()
        atoms: list = []
        in_bench = rel.startswith("bench/")
        cls_name = ctx.enclosing_class(cursor)
        for arg in children(cursor.node)[1:]:
            self._collect_atoms(arg, cls_name, in_bench, atoms)
        if not atoms:
            return
        self._sinks.append({
            "file": rel, "line": cursor.line or 0,
            "context": (fn.get("name", "") or "") if fn is not None else "",
            "callee": name,
            "fn_id": fn.get("id") if fn is not None else None,
            "atoms": atoms,
        })

    # -- summary / whole-program solve ---------------------------------------

    def summarize(self, ctx: TuContext) -> Optional[dict]:
        if not self._functions and not self._sinks:
            return None
        functions = {}
        for key, rec in self._functions.items():
            vmap = self._var_atoms.get(key, {})
            functions[key] = {
                "name": rec["name"], "sig": rec["sig"],
                "returns": _resolve_vars(rec["returns"], vmap),
                "out_params": {k: _resolve_vars(v, vmap)
                               for k, v in rec["out_params"].items()},
                "field_stores": {k: _resolve_vars(v, vmap)
                                 for k, v in rec["field_stores"].items()},
            }
        sinks = []
        for sink in self._sinks:
            key = self._fn_keys.get(sink.pop("fn_id") or "")
            vmap = self._var_atoms.get(key, {}) if key else {}
            sink["atoms"] = _resolve_vars(sink["atoms"], vmap)
            if sink["atoms"]:
                sinks.append(sink)
        return {"functions": functions, "sinks": sinks}

    @classmethod
    def finalize_program(cls, tus: list) -> list[dict]:
        merged = graph.merge_function_maps(tus, "functions")
        ret_taint, field_taint, out_taint = graph.solve_taint(merged)
        findings = []
        seen: set = set()
        for _rel, summary in tus:
            for sink in summary.get("sinks", []):
                labels = sorted(graph.resolve_atoms(
                    sink["atoms"], ret_taint, field_taint, out_taint))
                if not labels:
                    continue
                dedup = (sink["file"], sink["line"], sink["callee"])
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append({
                    "check": cls.id, "file": sink["file"],
                    "line": sink["line"],
                    "message": (f"nondeterministic value ("
                                f"{', '.join(labels)}) reaches serialization "
                                f"sink '{sink['callee']}()'"),
                    "suggestion": cls.suggestion,
                    "context": sink.get("context", ""),
                })
        return findings


class LockCheck(Check):
    """A9: lock/atomic discipline across TU boundaries.

    The interprocedural generalization of a3: a3 sees a submitted lambda
    mutate captured state directly; a9 follows the calls the lambda
    makes.  Per TU, every function is summarized with the non-atomic
    fields it writes without declaring a lock, the fields it writes
    through its pointer/reference parameters, the same-class methods it
    calls on `this`, and the parameters it forwards verbatim.  Submit
    sites (`submit`/`parallel_for`/`enqueue` receiving an inline lambda)
    record the member calls on captured objects and the captured
    variables passed to free functions.  The whole-program solve
    (graph.solve_method_writes / solve_param_escapes) then decides, with
    every TU's summary on the table, whether the callee chain reaches an
    unguarded field write.  Lock-declaring lambdas/methods and callees
    never summarized are trusted.
    """

    id = "a9-lock"
    description = ("code reachable from a pool-submitted lambda (in any TU) "
                   "writes a field with no lock or atomic")
    suggestion = ("guard the field with a mutex or make it std::atomic; "
                  "methods called from submitted lambdas run under the "
                  "pool's concurrency whatever TU they live in")
    scope_dirs = ("src/",)

    _SUBMITTERS = RaceCheck._SUBMITTERS
    _LOCKS = RaceCheck._LOCKS

    def __init__(self) -> None:
        self._functions: dict[str, dict] = {}
        self._sites: list[dict] = []

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        kind = cursor.kind
        if kind in _FUNC_KINDS:
            self._enter_function(cursor, ctx)
        elif kind in ("CallExpr", "CXXMemberCallExpr"):
            name, _ = callee_of(cursor.node)
            if name in self._SUBMITTERS and \
                    ctx.in_scope(cursor.file, self.scope_dirs):
                self._note_sites(cursor, ctx, name)

    # -- per-function facts --------------------------------------------------

    def _enter_function(self, cursor: Cursor, ctx: TuContext) -> None:
        node = cursor.node
        name = node.get("name", "") or ""
        if not name or name.startswith("operator"):
            return
        if ctx.rel(cursor.file) is None:
            return
        body = _body_of(node)
        if body is None:
            return
        cls_name = ctx.enclosing_class(cursor)
        sig = qual_type(node)
        rec = self._functions.setdefault(
            f"{cls_name}::{name}|{sig}",
            {"name": name, "sig": sig, "cls": cls_name, "guarded": False,
             "field_writes": [], "this_calls": [], "param_writes": {},
             "param_forwards": []})
        ref_params: dict = {}
        idx = -1
        for child in children(node):
            if child.get("kind") != "ParmVarDecl":
                continue
            idx += 1
            qual = qual_type(child)
            if "const" in qual:
                continue
            if "*" in qual or qual.rstrip().endswith("&"):
                ref_params[child.get("id")] = idx
        for sub in iter_own_stmts(body):
            skind = sub.get("kind", "")
            if skind.endswith("VarDecl") and \
                    self._LOCKS.search(desugared_type(sub)):
                rec["guarded"] = True
            elif skind in ("BinaryOperator", "CompoundAssignOperator",
                           "UnaryOperator"):
                if skind == "BinaryOperator" and sub.get("opcode") != "=":
                    continue
                if skind == "UnaryOperator" and \
                        sub.get("opcode") not in ("++", "--"):
                    continue
                self._note_write(sub, rec, ref_params)
            elif skind == "CXXMemberCallExpr":
                member = _member_of(sub)
                if member is not None:
                    base = strip_expr(first_expr_child(member))
                    mname = member.get("name", "") or ""
                    if base is not None and \
                            base.get("kind") == "CXXThisExpr" and mname and \
                            mname not in rec["this_calls"]:
                        rec["this_calls"].append(mname)
                self._note_forwards(sub, rec, ref_params)
            elif skind == "CallExpr":
                self._note_forwards(sub, rec, ref_params)

    def _note_write(self, stmt: JsonNode, rec: dict,
                    ref_params: dict) -> None:
        target = strip_expr(first_expr_child(stmt))
        if target is None or target.get("kind") != "MemberExpr":
            return
        if "atomic" in desugared_type(target):
            return
        fname = target.get("name", "") or ""
        if not fname:
            return
        base = strip_expr(first_expr_child(target))
        if base is None:
            return
        if base.get("kind") == "CXXThisExpr":
            if fname not in rec["field_writes"]:
                rec["field_writes"].append(fname)
        elif base.get("kind") == "DeclRefExpr":
            ref = base.get("referencedDecl") or {}
            if ref.get("id") in ref_params:
                rec["param_writes"].setdefault(
                    str(ref_params[ref.get("id")]), fname)

    def _note_forwards(self, call: JsonNode, rec: dict,
                       ref_params: dict) -> None:
        cname, _ = callee_of(call)
        if not cname or cname.startswith("operator") or \
                cname in CHECK_FAMILY or cname in self._SUBMITTERS:
            return
        for k, arg in enumerate(children(call)[1:]):
            target = strip_expr(arg)
            if target is None or target.get("kind") != "DeclRefExpr":
                continue
            ref = target.get("referencedDecl") or {}
            if ref.get("id") in ref_params:
                edge = [ref_params[ref.get("id")], cname, k]
                if edge not in rec["param_forwards"]:
                    rec["param_forwards"].append(edge)

    # -- submit sites --------------------------------------------------------

    def _note_sites(self, cursor: Cursor, ctx: TuContext,
                    submit_name: str) -> None:
        rel = ctx.rel(cursor.file)
        if rel is None:
            return
        fn = cursor.enclosing_function()
        context = (fn.get("name", "") or "") if fn is not None else ""
        encl_cls = ctx.enclosing_class(cursor)
        for sub in iter_subtree(cursor.node):
            if sub.get("kind") == "LambdaExpr":
                self._scan_lambda(sub, submit_name, rel, cursor.line or 0,
                                  context, encl_cls)

    def _scan_lambda(self, lam: JsonNode, submit_name: str, rel: str,
                     line: int, context: str, encl_cls: str) -> None:
        declared: set = set()
        for sub in iter_subtree(lam):
            skind = sub.get("kind", "")
            if skind.endswith("VarDecl"):
                declared.add(sub.get("id"))
                if self._LOCKS.search(desugared_type(sub)):
                    return  # body takes a lock: treated as synchronized
        for sub in iter_subtree(lam):
            skind = sub.get("kind")
            if skind == "CXXMemberCallExpr":
                self._scan_member_call(sub, declared, submit_name, rel, line,
                                       context, encl_cls)
            elif skind == "CallExpr":
                self._scan_free_call(sub, declared, submit_name, rel, line,
                                     context)

    def _scan_member_call(self, call: JsonNode, declared: set,
                          submit_name: str, rel: str, line: int,
                          context: str, encl_cls: str) -> None:
        member = _member_of(call)
        if member is None:
            return
        mname = member.get("name", "") or ""
        if not mname or mname.startswith("operator"):
            return
        base = strip_expr(first_expr_child(member))
        if base is None:
            return
        if base.get("kind") == "CXXThisExpr":
            self._sites.append({
                "kind": "method", "cls": encl_cls, "callee": mname,
                "recv": "this", "submit": submit_name, "file": rel,
                "line": line, "context": context})
            return
        if base.get("kind") != "DeclRefExpr":
            return
        ref = base.get("referencedDecl") or {}
        if ref.get("id") in declared or \
                not ref.get("kind", "").endswith("VarDecl"):
            return
        rtype = desugared_type(base) or qual_type(base) or \
            ((ref.get("type") or {}).get("qualType", "") or "")
        if "atomic" in rtype:
            return
        self._sites.append({
            "kind": "method", "cls": _class_of_type(rtype), "callee": mname,
            "recv": ref.get("name") or "<captured>", "submit": submit_name,
            "file": rel, "line": line, "context": context})

    def _scan_free_call(self, call: JsonNode, declared: set,
                        submit_name: str, rel: str, line: int,
                        context: str) -> None:
        cname, _ = callee_of(call)
        if not cname or cname.startswith("operator") or \
                cname in CHECK_FAMILY or cname in self._SUBMITTERS:
            return
        for k, arg in enumerate(children(call)[1:]):
            target = strip_expr(arg)
            if target is None or target.get("kind") != "DeclRefExpr":
                continue
            ref = target.get("referencedDecl") or {}
            if ref.get("id") in declared or \
                    not ref.get("kind", "").endswith("VarDecl"):
                continue
            if "atomic" in ((ref.get("type") or {}).get("qualType", "")):
                continue
            self._sites.append({
                "kind": "free", "callee": cname, "argidx": k,
                "arg": ref.get("name") or "<captured>",
                "submit": submit_name, "file": rel, "line": line,
                "context": context})

    # -- summary / whole-program solve ---------------------------------------

    def summarize(self, ctx: TuContext) -> Optional[dict]:
        if not self._functions and not self._sites:
            return None
        return {"functions": self._functions, "sites": self._sites}

    @classmethod
    def finalize_program(cls, tus: list) -> list[dict]:
        merged = graph.merge_function_maps(tus, "functions")
        writes = graph.solve_method_writes(merged)
        # Guarded functions are trusted end to end: a write through a
        # parameter (or a forward to an unguarded writer) performed under
        # a declared lock is synchronized, same as guarded methods in
        # solve_method_writes.
        escapes = graph.solve_param_escapes(
            merged,
            lambda rec: {} if rec.get("guarded") else
            {int(k): ["write", v]
             for k, v in (rec.get("param_writes") or {}).items()},
            lambda rec: [] if rec.get("guarded") else
            (rec.get("param_forwards") or []))
        findings = []
        seen: set = set()
        for _rel, summary in tus:
            for site in summary.get("sites", []):
                if site["kind"] == "method":
                    field = writes.get((site.get("cls", ""), site["callee"]))
                    if field is None:
                        continue
                    recv = site.get("recv", "<captured>")
                    target = "this" if recv == "this" else f"captured '{recv}'"
                    message = (
                        f"lambda submitted to '{site['submit']}' calls "
                        f"'{site.get('cls') or '?'}::{site['callee']}()' on "
                        f"{target}, which writes field '{field}' with no "
                        "lock or atomic")
                else:
                    reason = escapes.get((site["callee"],
                                          int(site["argidx"])))
                    if reason is None:
                        continue
                    field = _unwrap_reason(reason)
                    message = (
                        f"lambda submitted to '{site['submit']}' passes "
                        f"captured '{site['arg']}' to '{site['callee']}()', "
                        f"which writes field '{field}' with no lock or "
                        "atomic")
                dedup = (site["file"], site["line"], message)
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append({"check": cls.id, "file": site["file"],
                                 "line": site["line"], "message": message,
                                 "suggestion": cls.suggestion,
                                 "context": site.get("context", "")})
        return findings


class LifetimeCheck(Check):
    """A10: view parameters (std::span / Recorder*) escaping into members.

    A span or raw Recorder pointer taken as a parameter borrows storage
    the caller owns; storing it into a member lets the view outlive the
    call.  Per TU, functions with view parameters are summarized with
    the `this->member = param` stores they perform and the calls they
    forward the parameter to verbatim; graph.solve_param_escapes()
    closes the forward chains over every TU.  Only plain `member =
    param` stores count (a conditional or computed right-hand side is
    not a stored view), and constructor member-init lists are exempt —
    both deliberate under-reporting.
    """

    id = "a10-lifetime"
    description = ("std::span / Recorder* view parameter is stored into a "
                   "member that outlives the call (directly or through a "
                   "callee in another TU)")
    suggestion = ("copy the viewed data instead of the view, or document "
                  "the attached-observer lifetime contract and suppress; a "
                  "stored view must not outlive the buffer it borrows")
    scope_dirs = ("src/",)

    _VIEW = re.compile(r"\bspan<|\bRecorder\s*\*")

    def __init__(self) -> None:
        self._functions: dict[str, dict] = {}
        self._fn_info: dict[str, tuple] = {}  # fn node id -> (key, {pid: idx})

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        kind = cursor.kind
        if kind in _FUNC_KINDS:
            self._enter_function(cursor, ctx)
        elif kind == "BinaryOperator":
            if cursor.node.get("opcode") != "=":
                return
            info = self._info_for(cursor)
            if info is None:
                return
            kids = _expr_children(cursor.node)
            if len(kids) == 2:
                self._note_store(kids[0], kids[1], info, cursor, ctx)
        elif kind == "CXXOperatorCallExpr":
            # Class-type assignment (span member = span param) is an
            # operator= call: children are [callee, lhs, rhs].
            cname, _ = callee_of(cursor.node)
            if cname != "operator=":
                return
            info = self._info_for(cursor)
            if info is None:
                return
            kids = _expr_children(cursor.node)
            if len(kids) >= 3:
                self._note_store(kids[1], kids[2], info, cursor, ctx)
        elif kind in ("CallExpr", "CXXMemberCallExpr"):
            info = self._info_for(cursor)
            if info is not None:
                self._note_forward(cursor, ctx, info)

    def _info_for(self, cursor: Cursor) -> Optional[tuple]:
        fn = cursor.enclosing_function()
        if fn is None:
            return None
        return self._fn_info.get(fn.get("id"))

    def _enter_function(self, cursor: Cursor, ctx: TuContext) -> None:
        node = cursor.node
        name = node.get("name", "") or ""
        if not name or name.startswith("operator"):
            return
        if ctx.rel(cursor.file) is None:
            return
        view_params: dict = {}
        param_names: dict = {}
        param_ids: dict = {}
        idx = -1
        for child in children(node):
            if child.get("kind") != "ParmVarDecl":
                continue
            idx += 1
            qual = qual_type(child)
            if self._VIEW.search(qual) or \
                    self._VIEW.search(desugared_type(child)):
                view_params[str(idx)] = qual
                param_names[str(idx)] = child.get("name", "") or "<param>"
                param_ids[child.get("id")] = idx
        if not view_params:
            return
        cls_name = ctx.enclosing_class(cursor)
        key = f"{cls_name}::{name}|{qual_type(node)}"
        self._functions.setdefault(
            key, {"name": name, "sig": qual_type(node),
                  "view_params": view_params, "param_names": param_names,
                  "stores": [], "forwards": [], "edges": []})
        node_id = node.get("id")
        if isinstance(node_id, str):
            self._fn_info[node_id] = (key, param_ids)

    def _note_store(self, lhs: JsonNode, rhs: JsonNode, info: tuple,
                    cursor: Cursor, ctx: TuContext) -> None:
        key, param_ids = info
        target = strip_expr(lhs)
        rhs_t = strip_expr(rhs)
        if target is None or rhs_t is None:
            return
        if target.get("kind") != "MemberExpr" or \
                rhs_t.get("kind") != "DeclRefExpr":
            return
        base = strip_expr(first_expr_child(target))
        if base is None or base.get("kind") != "CXXThisExpr":
            return  # only members of the object itself outlive the call
        idx = param_ids.get((rhs_t.get("referencedDecl") or {}).get("id"))
        if idx is None:
            return
        rel = ctx.rel(cursor.file)
        if rel is None:
            return
        fn = cursor.enclosing_function()
        store = {"idx": idx, "field": target.get("name", "") or "?",
                 "file": rel, "line": cursor.line or 0,
                 "context": (fn.get("name", "") or "") if fn else "",
                 "scoped": ctx.in_scope(cursor.file, self.scope_dirs)}
        rec = self._functions[key]
        if store not in rec["stores"]:
            rec["stores"].append(store)

    def _note_forward(self, cursor: Cursor, ctx: TuContext,
                      info: tuple) -> None:
        key, param_ids = info
        node = cursor.node
        cname, _ = callee_of(node)
        if not cname or cname.startswith("operator") or cname in CHECK_FAMILY:
            return
        rec = self._functions[key]
        rel = ctx.rel(cursor.file)
        scoped = rel is not None and \
            ctx.in_scope(cursor.file, self.scope_dirs)
        fn = cursor.enclosing_function()
        context = (fn.get("name", "") or "") if fn is not None else ""
        for k, arg in enumerate(children(node)[1:]):
            target = strip_expr(arg)
            if target is None or target.get("kind") != "DeclRefExpr":
                continue
            idx = param_ids.get((target.get("referencedDecl") or {}).get("id"))
            if idx is None:
                continue
            edge = [idx, cname, k]
            if edge not in rec["edges"]:
                rec["edges"].append(edge)
            if scoped:
                fwd = {"idx": idx, "callee": cname, "argidx": k,
                       "file": rel, "line": cursor.line or 0,
                       "context": context}
                if fwd not in rec["forwards"]:
                    rec["forwards"].append(fwd)

    def summarize(self, ctx: TuContext) -> Optional[dict]:
        if not self._functions:
            return None
        return {"functions": self._functions}

    @classmethod
    def finalize_program(cls, tus: list) -> list[dict]:
        merged = graph.merge_function_maps(tus, "functions")
        escapes = graph.solve_param_escapes(
            merged,
            lambda rec: {int(s["idx"]): ["store", s["field"]]
                         for s in (rec.get("stores") or [])},
            lambda rec: rec.get("edges") or [])
        findings = []
        for fn_key in sorted(merged):
            rec = merged[fn_key]
            for idx_s in sorted(rec.get("view_params") or {}, key=int):
                idx = int(idx_s)
                pname = (rec.get("param_names") or {}).get(idx_s, "<param>")
                label = rec["view_params"][idx_s]
                stores = sorted(
                    (s for s in rec.get("stores") or []
                     if int(s["idx"]) == idx),
                    key=lambda s: (s["file"], s["line"]))
                scoped_stores = [s for s in stores if s.get("scoped", True)]
                if scoped_stores:
                    s = scoped_stores[0]
                    findings.append({
                        "check": cls.id, "file": s["file"], "line": s["line"],
                        "message": (f"view parameter '{pname}' ({label}) is "
                                    f"stored into member '{s['field']}', "
                                    "which outlives the call"),
                        "suggestion": cls.suggestion,
                        "context": s.get("context", "")})
                if stores:
                    continue  # direct store reported; skip its forwards
                for fwd in sorted(rec.get("forwards") or [],
                                  key=lambda f: (f["file"], f["line"])):
                    if int(fwd["idx"]) != idx:
                        continue
                    reason = escapes.get((fwd["callee"], int(fwd["argidx"])))
                    if reason is None:
                        continue
                    findings.append({
                        "check": cls.id, "file": fwd["file"],
                        "line": fwd["line"],
                        "message": (f"view parameter '{pname}' ({label}) "
                                    f"escapes through '{fwd['callee']}()' "
                                    f"into member "
                                    f"'{_unwrap_reason(reason)}', which "
                                    "outlives the call"),
                        "suggestion": cls.suggestion,
                        "context": fwd.get("context", "")})
                    break
        return findings


class SpanCheck(Check):
    """A11: a telemetry span begin that is not post-dominated by its end.

    Span pairs (Recorder::span_begin/span_end and the epoch::span_*
    helpers) must close on every path out of the opening scope —
    srbsg-trace flags an unbalanced pair as a truncated span, and in the
    Chrome export it renders as a phantom slice to the end of the run.
    The check is a linear scan per function-ish scope (lambdas open
    their own scope): begins push, ends pop, and a return/throw while
    the stack is non-empty is a path that escapes the span.  Functions
    whose own name is span-shaped are one half of a forwarding wrapper
    (epoch::span_fallback_begin emits only the begin) and are skipped.
    """

    id = "a11-span"
    description = ("telemetry span opened but not closed on every path "
                   "out of its scope")
    suggestion = ("close every span begin with its end on all exits "
                  "(early returns and throws included), or move the pair "
                  "into a helper with no exits between them")
    scope_dirs = ("src/wl", "src/controller", "src/telemetry", "bench/")

    _CALL_KINDS = ("CallExpr", "CXXMemberCallExpr")
    _SCOPE_KINDS = ("LambdaExpr", "FunctionDecl", "CXXMethodDecl",
                    "CXXConstructorDecl", "CXXDestructorDecl",
                    "CXXConversionDecl")

    def begin_tu(self, ctx: TuContext) -> None:
        # id(scope node) -> [(callee name, begin cursor), ...]
        self._open: dict[int, list] = {}

    @staticmethod
    def _span_role(name: str) -> str:
        low = name.lower()
        if "span" not in low:
            return ""
        if low.endswith("begin"):
            return "begin"
        if low.endswith("end"):
            return "end"
        return ""

    def _scope(self, cursor: Cursor) -> tuple[int, str]:
        for parent in reversed(cursor.parents):
            if parent.get("kind") in self._SCOPE_KINDS:
                return id(parent), parent.get("name", "") or ""
        return 0, ""

    def visit(self, cursor: Cursor, ctx: TuContext) -> None:
        kind = cursor.kind
        if kind in self._CALL_KINDS:
            name, _ = callee_of(cursor.node)
            role = self._span_role(name or "")
            if not role:
                return
            if not ctx.in_scope(cursor.file, self.scope_dirs):
                return
            scope_id, scope_name = self._scope(cursor)
            if self._span_role(scope_name):
                return  # one half of a forwarding wrapper
            stack = self._open.setdefault(scope_id, [])
            if role == "begin":
                stack.append((name, cursor))
            elif stack:
                stack.pop()
            else:
                ctx.add(self, cursor,
                        f"'{name}' closes a span that was never opened in "
                        "this scope")
        elif kind in ("ReturnStmt", "CXXThrowExpr"):
            if not ctx.in_scope(cursor.file, self.scope_dirs):
                return
            stack = self._open.get(self._scope(cursor)[0])
            if stack:
                opened = ", ".join(f"'{n}' (line {c.line or 0})"
                                   for n, c in stack)
                exit_kind = "return" if kind == "ReturnStmt" else "throw"
                ctx.add(self, cursor,
                        f"{exit_kind} escapes {len(stack)} open span(s): "
                        f"{opened}")

    def summarize(self, ctx: TuContext) -> Optional[dict]:
        # End-of-TU flush: pre-order visitation is source order inside a
        # scope, so anything still open was never closed in that scope.
        for stack in self._open.values():
            for name, begin_cursor in stack:
                ctx.add(self, begin_cursor,
                        f"'{name}' opens a span that is never closed in "
                        "this scope")
        self._open.clear()
        return None


ALL_CHECKS = [WidthCheck, DeterminismCheck, RaceCheck, StateCheck,
              UncheckedCheck, BatchCheck, TelemetryCheck, TaintCheck,
              LockCheck, LifetimeCheck, SpanCheck]
CHECKS_BY_ID = {c.id: c for c in ALL_CHECKS}
