"""TU selection and clang invocation for srbsg-analyze.

Drives a plain `clang` driver (no libclang) over the CMake-exported
compile database.  Only the flags that affect parsing are forwarded
(-I/-isystem/-D/-U/-std/-include); optimizer and warning flags from the
gcc command lines are dropped so any installed clang can parse the tree.

When no clang is found the AST layer degrades to a skipped-with-notice
result (exit 0), mirroring the `tidy` target — the regex pre-pass still
runs, so lint R1 coverage never regresses on clang-less boxes.
"""

from __future__ import annotations

import json
import os
import shlex
import shutil
import subprocess
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from checks import TuContext
from engine import walk

CLANG_CANDIDATES = ("clang", "clang-20", "clang-19", "clang-18", "clang-17",
                    "clang-16", "clang-15", "clang-14", "clang++")

# Flags forwarded from the compile database to the parsing clang.
_KEEP_PREFIXES = ("-I", "-isystem", "-D", "-U", "-std=")


def find_clang(explicit: Optional[str] = None) -> Optional[str]:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def parse_flags(entry: dict) -> list[str]:
    """Parse-relevant flags from one compile-db entry."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    kept: list[str] = []
    i = 1  # skip the compiler
    while i < len(argv):
        arg = argv[i]
        if arg in ("-I", "-isystem", "-D", "-U", "-include"):
            if i + 1 < len(argv):
                kept.extend([arg, argv[i + 1]])
            i += 2
            continue
        if arg.startswith(_KEEP_PREFIXES):
            kept.append(arg)
        i += 1
    return kept


def select_tus(db: list[dict], repo_root: str,
               paths: Optional[list[str]]) -> list[dict]:
    """Compile-db entries under src/ and bench/ (default) or under
    explicit paths.  bench/ is selected so a6-batch patrols the
    benchmark write loops; the other checks scope themselves out via
    `scope_dirs` (see checks.py)."""
    selected = []
    for entry in db:
        file = entry.get("file", "")
        if not os.path.isabs(file):
            file = os.path.join(entry.get("directory", ""), file)
        rel = os.path.relpath(file, repo_root)
        if rel.startswith(".."):
            continue
        if paths:
            if not any(rel == p or rel.startswith(p.rstrip("/") + "/")
                       for p in paths):
                continue
        elif not (rel.startswith("src/") or rel.startswith("bench/")):
            continue
        selected.append({"file": file, "rel": rel, "flags": parse_flags(entry)})
    return selected


def dump_ast(clang: str, file: str, flags: list[str]) -> Optional[dict]:
    """Runs clang and parses the JSON AST; None when clang fails hard."""
    cmd = [clang, "-x", "c++", "-fsyntax-only", "-w",
           "-Xclang", "-ast-dump=json", *flags, file]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang still emits a usable AST for TUs with recoverable errors;
    # require output, not a zero exit.
    if not proc.stdout.strip():
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def clang_version(clang: str) -> str:
    """First line of `clang --version` (cache invalidation input)."""
    try:
        proc = subprocess.run([clang, "--version"], capture_output=True,
                              text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    lines = (proc.stdout or proc.stderr or "").strip().splitlines()
    return lines[0].strip() if lines else "unknown"


def analyze_ast(root: dict, repo_root: str, src_root: str,
                check_classes: list) -> tuple[TuContext, dict]:
    """Runs the check visitors over one parsed AST; returns the TU
    context (findings, dep tracking) and the per-check summaries
    ({check id: summary} for checks with whole-program facts)."""
    ctx = TuContext(repo_root, src_root)
    instances = [cls() for cls in check_classes]
    for check in instances:
        check.begin_tu(ctx)

    def visit(cursor):
        ctx.note_node(cursor)
        for check in instances:
            check.visit(cursor, ctx)

    walk(root, visit)
    summaries: dict = {}
    for check in instances:
        summary = check.summarize(ctx)
        if summary is not None:
            summaries[check.id] = summary
    return ctx, summaries


def _tu_worker(args: tuple) -> tuple:
    """(findings, summaries, deps, error) for one TU."""
    clang, file, flags, repo_root, src_root, check_ids = args
    from checks import CHECKS_BY_ID  # re-import inside worker processes
    root = dump_ast(clang, file, flags)
    if root is None:
        return [], {}, [], f"clang failed to parse {file}"
    ctx, summaries = analyze_ast(root, repo_root, src_root,
                                 [CHECKS_BY_ID[c] for c in check_ids])
    return ctx.findings, summaries, ctx.deps(), None


def run_tus(clang: str, tus: list[dict], repo_root: str, src_root: str,
            check_ids: list[str], jobs: int = 0, cache=None) -> tuple:
    """Analyzes every TU (warm cache entries are reused without invoking
    clang); returns (findings, tu_summaries, errors, stats) where
    tu_summaries is [(rel, {check id: summary})] in TU order and stats
    is {"hits": n, "analyzed": m}."""
    jobs = jobs or (os.cpu_count() or 1)
    results_by_rel: dict = {}
    todo: list[dict] = []
    hits = 0
    for tu in tus:
        entry = cache.lookup(tu) if cache is not None else None
        if entry is not None:
            results_by_rel[tu["rel"]] = (entry["findings"],
                                         entry["summaries"], None)
            hits += 1
        else:
            todo.append(tu)

    tasks = [(clang, tu["file"], tu["flags"], repo_root, src_root, check_ids)
             for tu in todo]
    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            worker_results = list(pool.map(_tu_worker, tasks))
    else:
        worker_results = [_tu_worker(t) for t in tasks]
    for tu, (tu_findings, summaries, deps, error) in zip(todo,
                                                         worker_results):
        results_by_rel[tu["rel"]] = (tu_findings, summaries, error)
        if cache is not None and error is None:
            cache.store(tu, tu_findings, summaries, deps)

    findings: list[dict] = []
    tu_summaries: list[tuple] = []
    errors: list[str] = []
    for tu in tus:
        tu_findings, summaries, error = results_by_rel[tu["rel"]]
        findings.extend(tu_findings)
        tu_summaries.append((tu["rel"], summaries or {}))
        if error:
            errors.append(error)
    return findings, tu_summaries, errors, {"hits": hits,
                                            "analyzed": len(todo)}
