"""Clang JSON-AST model for srbsg-analyze.

The analyzer consumes the output of `clang -Xclang -ast-dump=json
-fsyntax-only` — plain JSON, no libclang bindings — so the only
toolchain requirement is a clang *driver*.  This module owns the two
subtle parts of that format:

* **Location carry-forward.**  The serializer omits `file` (and `line`)
  from a location when unchanged since the previously *printed*
  location, in pre-order emission order.  The walker therefore visits
  every node — including system-header subtrees we otherwise ignore —
  updating a running (file, line) state, and exposes the resolved
  location per node.  Skipping subtrees would silently corrupt the file
  attribution of every node after them.

* **Defensive field access.**  Dump layouts drift between clang
  releases.  Every accessor tolerates missing fields and returns None
  rather than raising; checks are expected to skip nodes they cannot
  interpret (under-reporting beats crashing on a new clang).

The walk is iterative (explicit stack): expression trees in standard
headers routinely exceed Python's recursion limit.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator, Optional

JsonNode = dict

# Widths (bits) of the integer types the simulator traffics in, on LP64.
# Types not listed (int128, wchar_t, dependent types, ...) resolve to
# None and are skipped by width-sensitive checks.
_INT_WIDTHS = {
    "bool": 1,
    "char": 8, "signed char": 8, "unsigned char": 8,
    "short": 16, "unsigned short": 16, "short int": 16, "unsigned short int": 16,
    "int": 32, "unsigned int": 32, "unsigned": 32,
    "long": 64, "unsigned long": 64, "long int": 64, "unsigned long int": 64,
    "long long": 64, "unsigned long long": 64,
    "long long int": 64, "unsigned long long int": 64,
}

_CV_REF = re.compile(r"\b(const|volatile)\b|[&]+$")


def _strip_cvref(qual: str) -> str:
    return _CV_REF.sub("", qual).strip()


def type_width(type_obj: Optional[dict]) -> Optional[int]:
    """Bit width of an integer type object, or None when unknown."""
    if not isinstance(type_obj, dict):
        return None
    for key in ("desugaredQualType", "qualType"):
        qual = type_obj.get(key)
        if isinstance(qual, str):
            width = _INT_WIDTHS.get(_strip_cvref(qual))
            if width is not None:
                return width
    return None


def qual_type(node: Optional[JsonNode]) -> str:
    """The node's printed type, or '' when absent."""
    if not isinstance(node, dict):
        return ""
    t = node.get("type")
    if isinstance(t, dict):
        q = t.get("qualType")
        if isinstance(q, str):
            return q
    return ""


def desugared_type(node: Optional[JsonNode]) -> str:
    if not isinstance(node, dict):
        return ""
    t = node.get("type")
    if isinstance(t, dict):
        for key in ("desugaredQualType", "qualType"):
            q = t.get(key)
            if isinstance(q, str):
                return q
    return ""


def children(node: JsonNode) -> list:
    inner = node.get("inner")
    return inner if isinstance(inner, list) else []


def first_expr_child(node: JsonNode) -> Optional[JsonNode]:
    """First child that is an expression-ish node (skips comments)."""
    for child in children(node):
        kind = child.get("kind", "")
        if kind and not kind.endswith("Comment"):
            return child
    return None


def iter_subtree(node: JsonNode) -> Iterator[JsonNode]:
    """Pre-order iteration over `node` and everything below it."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if not isinstance(cur, dict):
            continue
        yield cur
        stack.extend(reversed(children(cur)))


class LocationTracker:
    """Replays clang's location serialization to resolve omitted fields."""

    def __init__(self) -> None:
        self.file: Optional[str] = None
        self.line: Optional[int] = None

    def _consume_plain(self, loc: dict) -> tuple[Optional[str], Optional[int]]:
        # An empty dict is an invalid location and must not touch state.
        if not loc:
            return self.file, self.line
        if "offset" not in loc and "line" not in loc and "file" not in loc \
                and "col" not in loc:
            return self.file, self.line
        if isinstance(loc.get("file"), str):
            self.file = loc["file"]
        if isinstance(loc.get("line"), int):
            self.line = loc["line"]
        return self.file, self.line

    def consume(self, loc: Optional[dict]) -> tuple[Optional[str], Optional[int]]:
        """Update state from one location object; returns the location the
        node should report (expansion site for macro locations)."""
        if not isinstance(loc, dict):
            return self.file, self.line
        if "spellingLoc" in loc or "expansionLoc" in loc:
            # Macro location: the serializer prints spelling then expansion.
            spelling = loc.get("spellingLoc")
            if isinstance(spelling, dict):
                self._consume_plain(spelling)
            expansion = loc.get("expansionLoc")
            if isinstance(expansion, dict):
                return self._consume_plain(expansion)
            return self.file, self.line
        return self._consume_plain(loc)

    def consume_node(self, node: JsonNode) -> tuple[Optional[str], Optional[int]]:
        """Process a node's loc/range in serialization order; returns the
        node's effective (file, line)."""
        eff_file, eff_line = None, None
        if "loc" in node:
            eff_file, eff_line = self.consume(node.get("loc"))
        rng = node.get("range")
        if isinstance(rng, dict):
            begin_file, begin_line = self.consume(rng.get("begin"))
            if eff_file is None:
                eff_file, eff_line = begin_file, begin_line
            self.consume(rng.get("end"))
        if eff_file is None:
            eff_file, eff_line = self.file, self.line
        return eff_file, eff_line


class Cursor:
    """A visited node plus its resolved location and ancestry."""

    __slots__ = ("node", "file", "line", "parents")

    def __init__(self, node: JsonNode, file: Optional[str], line: Optional[int],
                 parents: tuple):
        self.node = node
        self.file = file
        self.line = line
        self.parents = parents  # tuple of ancestor JsonNodes, outermost first

    @property
    def kind(self) -> str:
        return self.node.get("kind", "")

    def nearest(self, *kinds: str) -> Optional[JsonNode]:
        for parent in reversed(self.parents):
            if parent.get("kind") in kinds:
                return parent
        return None

    def enclosing_function(self) -> Optional[JsonNode]:
        return self.nearest("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                            "CXXDestructorDecl", "CXXConversionDecl")


def walk(root: JsonNode, visit: Callable[[Cursor], None]) -> None:
    """Full pre-order walk with location tracking and parent chains.

    `visit` is called for every node (any file); visitors apply their own
    file scoping using cursor.file.
    """
    tracker = LocationTracker()
    # Stack holds (node, parents) frames; children pushed reversed so the
    # walk order matches clang's serialization order — required for the
    # location carry-forward to resolve correctly.
    stack: list[tuple[JsonNode, tuple]] = [(root, ())]
    while stack:
        node, parents = stack.pop()
        if not isinstance(node, dict):
            continue
        file, line = tracker.consume_node(node)
        visit(Cursor(node, file, line, parents))
        kids = children(node)
        if kids:
            child_parents = parents + (node,)
            for child in reversed(kids):
                stack.append((child, child_parents))


def index_decls(root: JsonNode) -> dict:
    """Maps decl id -> node for reference resolution (referencedMemberDecl)."""
    index: dict = {}
    for node in iter_subtree(root):
        node_id = node.get("id")
        if isinstance(node_id, str) and node.get("kind", "").endswith("Decl"):
            index[node_id] = node
    return index


def callee_of(call: JsonNode) -> tuple[str, str]:
    """(name, signature) of a call's target, best effort.

    CallExpr: first child chain holds a DeclRefExpr for the callee.
    CXXMemberCallExpr / CXXOperatorCallExpr: a MemberExpr / DeclRefExpr.
    Returns ('', '') when unresolvable.
    """
    head = first_expr_child(call)
    if head is None:
        return "", ""
    for node in iter_subtree(head):
        kind = node.get("kind")
        if kind == "DeclRefExpr":
            ref = node.get("referencedDecl")
            if isinstance(ref, dict):
                name = ref.get("name", "") or ""
                sig = ""
                t = ref.get("type")
                if isinstance(t, dict):
                    sig = t.get("qualType", "") or ""
                return name, sig
        elif kind == "MemberExpr":
            name = node.get("name", "") or ""
            return name, ""
    return "", ""


def integer_literal_value(node: JsonNode) -> Optional[int]:
    """Value of an IntegerLiteral subtree (possibly behind implicit casts)."""
    for sub in iter_subtree(node):
        if sub.get("kind") == "IntegerLiteral":
            value = sub.get("value")
            if isinstance(value, str):
                try:
                    return int(value, 0)
                except ValueError:
                    return None
        elif sub.get("kind") not in ("ImplicitCastExpr", "ConstantExpr",
                                     "ParenExpr"):
            return None
    return None
