"""Cross-TU symbol graph and interprocedural solvers for srbsg-analyze.

Per-TU visitors (checks.py) compress each translation unit into small
JSON-serializable *summaries* — per-function facts plus the call edges
between them.  This module owns the whole-program half: it merges the
summaries of every analyzed TU into one symbol graph and runs the
fixed-point solvers the interprocedural checks (a5, a8, a9, a10) share.
Because summaries are plain JSON they also round-trip through the
incremental cache (cache.py): a warm run re-solves the whole program
from cached summaries without re-parsing a single TU.

Resolution model
----------------
Functions are keyed `Cls::name|signature` (the a5 convention).  Cross-TU
resolution is by *name*: a call edge `("call", "foo")` matches every
summarized function whose bare name is `foo` (overloads merge, which
over-approximates but only along edges that already carry a fact).
Callees with no summary — std library, system headers, bodies the
analyzer never saw — resolve as *trusted*: they contribute no taint, no
writes, no escapes.  That keeps the conservatism direction identical to
the per-TU checks: under-report rather than guess.

The taint lattice
-----------------
a8's atoms form a flat lattice per value: an expression's abstract value
is a *set of atoms*, joined by set union, where each atom is one of

  ("src", label)        a direct nondeterminism source (rand(), a wall
                        clock, a pointer hashed/cast to an integer)
  ("call", name)        the return value of `name` — tainted iff `name`
                        resolves to a function whose return is tainted
  ("field", key)        a read of field `key` (`Cls::member`) — tainted
                        iff any summarized store to that field is
  ("out", name, k)      the k-th argument slot of a call to `name` —
                        tainted iff `name` writes a tainted value
                        through its k-th (pointer/reference) parameter

solve_taint() iterates three maps (return-taint by name, field-taint by
key, out-param-taint by (name, k)) to their least fixed point; a sink
argument is then flagged when its atom set resolves to a non-empty label
set.  The lattice has no Top: unresolvable atoms are bottom (trusted).
"""

from __future__ import annotations

from typing import Callable, Optional

Atom = list  # JSON-serialized atoms: ["src", label] | ["call", name] | ...


def merge_function_maps(tus: list, field: str) -> dict:
    """Merges the per-TU `functions` maps of `field` summaries.

    `tus` is a list of (rel, summary) pairs.  Records with the same key
    (one function seen from several TUs, e.g. an inline header method)
    are union-merged list-field by list-field; scalar fields keep the
    first non-empty value.
    """
    merged: dict = {}
    for _rel, summary in tus:
        for key, rec in (summary.get(field) or {}).items():
            into = merged.get(key)
            if into is None:
                # Deep-enough copy so repeated finalize calls stay pure.
                merged[key] = {
                    k: (list(v) if isinstance(v, list)
                        else dict(v) if isinstance(v, dict) else v)
                    for k, v in rec.items()
                }
                continue
            for k, v in rec.items():
                if isinstance(v, list):
                    have = into.setdefault(k, [])
                    for item in v:
                        if item not in have:
                            have.append(item)
                elif isinstance(v, dict):
                    have = into.setdefault(k, {})
                    for sub_key, sub_v in v.items():
                        if sub_key not in have:
                            have[sub_key] = sub_v
                        elif isinstance(sub_v, list):
                            for item in sub_v:
                                if item not in have[sub_key]:
                                    have[sub_key].append(item)
                elif not into.get(k):
                    into[k] = v
    return merged


class CallGraph:
    """Name/signature-indexed view over merged function summaries.

    This is the symbol index the a5 check-closure prototype grew into:
    `functions` maps key -> record (any per-check record shape with at
    least a `name`), and candidate resolution tries exact (name, sig)
    first, then bare name.
    """

    def __init__(self, functions: dict):
        self.functions = functions
        self.by_name: dict[str, list] = {}
        self.by_name_sig: dict[tuple, list] = {}
        for key, rec in functions.items():
            name = rec.get("name", "")
            self.by_name.setdefault(name, []).append(key)
            sig = rec.get("sig", "")
            if sig:
                self.by_name_sig.setdefault((name, sig), []).append(key)

    def candidates(self, name: str, sig: str = "") -> Optional[list]:
        """Keys of summarized functions a call to (name, sig) may reach,
        or None when the callee was never summarized (trusted)."""
        if sig:
            keys = self.by_name_sig.get((name, sig))
            if keys:
                return keys
        return self.by_name.get(name)

    def fixed_point(self, step: Callable[[], bool]) -> None:
        """Runs `step` (returns True when something changed) to a fixed
        point.  Every solver here is monotone over finite sets, so this
        terminates."""
        while step():
            pass


# -- a5: 'reaches a check' closure ------------------------------------------

def solve_check_closure(graph: CallGraph) -> set:
    """Keys of functions that reach a check_* call directly or through
    any summarized callee; unsummarized callees are trusted (checking)."""
    checking = {k for k, rec in graph.functions.items() if rec.get("checks")}

    def callee_checks(callee) -> bool:
        name, sig = callee
        keys = graph.candidates(name, sig)
        if keys is None:
            return True  # body never seen: trusted
        return any(k in checking for k in keys)

    def step() -> bool:
        changed = False
        for key, rec in graph.functions.items():
            if key in checking:
                continue
            if any(callee_checks(tuple(c)) for c in rec.get("calls", [])):
                checking.add(key)
                changed = True
        return changed

    graph.fixed_point(step)
    return checking


# -- a8: determinism-taint lattice ------------------------------------------

def resolve_atoms(atoms: list, ret_taint: dict, field_taint: dict,
                  out_taint: dict) -> set:
    """Source labels an atom set resolves to under the current maps."""
    labels: set = set()
    for atom in atoms:
        kind = atom[0]
        if kind == "src":
            labels.add(atom[1])
        elif kind == "call":
            labels |= ret_taint.get(atom[1], frozenset())
        elif kind == "field":
            labels |= field_taint.get(atom[1], frozenset())
        elif kind == "out":
            labels |= out_taint.get((atom[1], atom[2]), frozenset())
    return labels


def solve_taint(functions: dict) -> tuple[dict, dict, dict]:
    """Least fixed point of the taint lattice over merged a8 summaries.

    Returns (ret_taint: name -> labels, field_taint: key -> labels,
    out_taint: (name, k) -> labels).  Overloads merge by name (union).
    """
    ret_taint: dict = {}
    field_taint: dict = {}
    out_taint: dict = {}

    def step() -> bool:
        changed = False
        for rec in functions.values():
            name = rec.get("name", "")
            labels = resolve_atoms(rec.get("returns", []),
                                   ret_taint, field_taint, out_taint)
            if labels - ret_taint.get(name, set()):
                ret_taint[name] = ret_taint.get(name, set()) | labels
                changed = True
            for idx, atoms in (rec.get("out_params") or {}).items():
                slot = (name, int(idx))
                labels = resolve_atoms(atoms, ret_taint, field_taint,
                                       out_taint)
                if labels - out_taint.get(slot, set()):
                    out_taint[slot] = out_taint.get(slot, set()) | labels
                    changed = True
            for field, atoms in (rec.get("field_stores") or {}).items():
                labels = resolve_atoms(atoms, ret_taint, field_taint,
                                       out_taint)
                if labels - field_taint.get(field, set()):
                    field_taint[field] = field_taint.get(field, set()) | labels
                    changed = True
        return changed

    CallGraph(functions).fixed_point(step)
    return ret_taint, field_taint, out_taint


# -- a9 / a10: escape fixed points ------------------------------------------

def solve_param_escapes(functions: dict, direct_of: Callable[[dict], dict],
                        forwards_of: Callable[[dict], list]) -> dict:
    """Generic 'parameter escapes' fixed point, by (bare name, index).

    `direct_of(rec)` maps param index -> reason for parameters the
    function itself compromises (stores into a member / writes a field
    through); `forwards_of(rec)` lists [param_idx, callee, arg_idx]
    edges where the parameter is passed through verbatim.  A parameter
    escapes when a direct reason exists or a forward reaches an
    escaping (callee, arg_idx).  Returns {(name, idx): reason}; the
    reason of a forwarded escape is ("via", callee, underlying_reason).
    """
    escapes: dict = {}
    for rec in functions.values():
        name = rec.get("name", "")
        for idx, reason in direct_of(rec).items():
            escapes.setdefault((name, int(idx)), reason)

    def step() -> bool:
        changed = False
        for rec in functions.values():
            name = rec.get("name", "")
            for edge in forwards_of(rec):
                pidx, callee, argidx = edge[0], edge[1], edge[2]
                slot = (name, int(pidx))
                target = escapes.get((callee, int(argidx)))
                if target is not None and slot not in escapes:
                    escapes[slot] = ("via", callee, target)
                    changed = True
        return changed

    CallGraph(functions).fixed_point(step)
    return escapes


def solve_method_writes(functions: dict) -> dict:
    """(cls, method) -> offending field, for methods that write a
    non-atomic field without a lock — directly or through any same-class
    method they call on `this` (merged across TUs).  Methods that
    declare a lock guard are trusted, as are callees never summarized.
    """
    writes: dict = {}
    for rec in functions.values():
        if rec.get("guarded"):
            continue
        fields = rec.get("field_writes") or []
        if fields:
            writes.setdefault((rec.get("cls", ""), rec.get("name", "")),
                              fields[0])

    def step() -> bool:
        changed = False
        for rec in functions.values():
            if rec.get("guarded"):
                continue
            slot = (rec.get("cls", ""), rec.get("name", ""))
            if slot in writes:
                continue
            for callee in rec.get("this_calls", []):
                hit = writes.get((rec.get("cls", ""), callee))
                if hit is not None:
                    writes[slot] = hit
                    changed = True
                    break
        return changed

    CallGraph(functions).fixed_point(step)
    return writes
