"""Regex pre-pass: lint.py's R1 rule, owned by srbsg-analyze.

The randomness/wall-clock rule moved here from tools/lint.py (which now
runs R2-R4 by default) so a violation is reported exactly once, by one
tool, under one check id.  The pre-pass reuses lint.py's patterns and
comment-stripping verbatim, runs in milliseconds, and works without
clang — it is the determinism check's floor, not a second reporter:
findings are merged with the AST pass by (file, line) before reporting.
"""

from __future__ import annotations

import importlib.util
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PREPASS_CHECK_ID = "a2-determinism"


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "srbsg_lint", os.path.join(_TOOLS_DIR, "lint.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_prepass(repo_root: str, files: list[str]) -> list[dict]:
    """R1 findings (as a2-determinism) over repo-relative `files`."""
    lint = _load_lint()
    findings: list[dict] = []
    for rel in files:
        path = os.path.join(repo_root, rel)
        if not os.path.isfile(path):
            continue
        try:
            lines = lint.strip_comments(
                open(path, encoding="utf-8", errors="replace").read())
        except OSError as err:
            print(f"srbsg-analyze: pre-pass cannot read {rel}: {err}",
                  file=sys.stderr)
            continue
        for lineno, line in enumerate(lines, start=1):
            for rule, pattern, message in lint.BANNED_PATTERNS:
                if rule != "R1":
                    continue
                if pattern.search(line):
                    findings.append({
                        "check": PREPASS_CHECK_ID,
                        "file": rel,
                        "line": lineno,
                        "message": f"{message} [pre-pass]",
                        "suggestion": ("thread an explicitly seeded "
                                       "srbsg::Rng through the call path"),
                        "context": "",
                    })
    return findings


def merge_prepass(ast_findings: list[dict],
                  prepass_findings: list[dict]) -> list[dict]:
    """Drops pre-pass findings the AST pass already reported at the same
    (file, line) — one violation, one report."""
    covered = {(f["file"], f.get("line", 0)) for f in ast_findings
               if f["check"] == PREPASS_CHECK_ID}
    merged = list(ast_findings)
    for finding in prepass_findings:
        if (finding["file"], finding.get("line", 0)) not in covered:
            merged.append(finding)
    return merged


def prepass_files(repo_root: str, tus: list[dict], extra_sources: list[str],
                  paths: list[str] | None = None) -> list[str]:
    """Files the pre-pass scans: every selected src/ and bench/ TU plus
    the headers under both trees (headers are not TUs but lint R1 always
    covered them).  bench/ is in scope: its binaries time themselves
    with chrono clocks, which R1's patterns deliberately do not match,
    but rand()/time(NULL) in a benchmark breaks run-to-run
    reproducibility exactly like it does in src/.  When the caller
    restricted analysis with --paths, the same restriction applies here
    (extra --sources files are explicit requests and always scanned)."""
    files = {tu["rel"] for tu in tus
             if tu["rel"].startswith(("src/", "bench/"))}
    for tree in ("src", "bench"):
        tree_root = os.path.join(repo_root, tree)
        if not os.path.isdir(tree_root):
            continue
        for dirpath, _dirnames, filenames in os.walk(tree_root):
            for name in filenames:
                if name.endswith((".hpp", ".h")):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          repo_root)
                    files.add(rel)
    if paths:
        prefixes = [p.rstrip("/") for p in paths]
        files = {f for f in files
                 if any(f == p or f.startswith(p + "/") for p in prefixes)}
    files.update(extra_sources)
    return sorted(files)
