"""Finding rendering for srbsg-analyze (text and JSON)."""

from __future__ import annotations

import json
import sys


def print_text(new: list[dict], baselined: list[dict], suppressed: list[dict],
               errors: list[str], skipped_notice: str = "") -> None:
    for finding in new:
        context = f" [in {finding['context']}]" if finding.get("context") else ""
        print(f"{finding['file']}:{finding['line']}: {finding['check']}: "
              f"{finding['message']}{context}")
        if finding.get("suggestion"):
            print(f"    fix: {finding['suggestion']}")
    for error in errors:
        print(f"srbsg-analyze: warning: {error}", file=sys.stderr)
    if skipped_notice:
        print(skipped_notice)
    summary = (f"srbsg-analyze: {len(new)} new finding(s), "
               f"{len(baselined)} baselined, {len(suppressed)} suppressed")
    print(summary, file=sys.stderr if new else sys.stdout)


def print_json(new: list[dict], baselined: list[dict], suppressed: list[dict],
               errors: list[str], skipped: bool) -> None:
    print(json.dumps({
        "new": new,
        "baselined": baselined,
        "suppressed": suppressed,
        "errors": errors,
        "ast_skipped": skipped,
    }, indent=2))
