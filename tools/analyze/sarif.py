"""SARIF 2.1.0 emitter for srbsg-analyze.

Emits one run with one rule per registered check and one result per
finding.  Baselined findings are carried as suppressed results with a
suppression of kind "external" (the committed baseline.json), inline
`// srbsg-analyze: suppress(...)` comments as kind "inSource", so SARIF
consumers (GitHub code scanning, IDE viewers) show exactly the findings
the repo's own gates treat as new.

validate() is a structural validator covering the subset of the 2.1.0
schema this emitter uses — required properties, types, and referential
integrity (ruleIndex agreement, region bounds).  It exists so the
selftest can gate the emitter without a network fetch of the official
schema; it intentionally rejects documents this module never produces.
"""

from __future__ import annotations

import json
from typing import Optional

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
_URI_BASE_ID = "REPOROOT"


def _rule(check_cls) -> dict:
    return {
        "id": check_cls.id,
        "name": check_cls.__name__,
        "shortDescription": {"text": check_cls.description},
        "help": {"text": check_cls.suggestion},
        "defaultConfiguration": {"level": "warning"},
    }


def _result(finding: dict, rule_index: dict,
            suppression: Optional[dict]) -> dict:
    result = {
        "ruleId": finding["check"],
        "ruleIndex": rule_index[finding["check"]],
        "level": "warning",
        "message": {"text": finding["message"]},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding["file"],
                    "uriBaseId": _URI_BASE_ID,
                },
                "region": {"startLine": max(1, finding.get("line", 1) or 1)},
            },
        }],
    }
    context = finding.get("context", "")
    if context:
        result["partialFingerprints"] = {"srbsgContext/v1": context}
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def build(new: list, baselined: list, suppressed: list, check_classes: list,
          repo_root: str) -> dict:
    """SARIF document for one analyzer run."""
    rules = [_rule(cls) for cls in check_classes]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for finding in new:
        results.append(_result(finding, rule_index, None))
    for finding in baselined:
        results.append(_result(finding, rule_index, {
            "kind": "external",
            "justification": "accepted in tools/analyze/baseline.json",
        }))
    for finding in suppressed:
        results.append(_result(finding, rule_index, {
            "kind": "inSource",
            "justification": "inline srbsg-analyze: suppress(...) comment",
        }))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "srbsg-analyze",
                "informationUri": "tools/analyze",
                "rules": rules,
            }},
            "originalUriBaseIds": {
                _URI_BASE_ID: {"uri": "file://" + repo_root.rstrip("/") + "/"},
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def write(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


# -- structural validation ----------------------------------------------------

def _expect(errors: list, cond: bool, message: str) -> bool:
    if not cond:
        errors.append(message)
    return cond


def validate(doc: dict) -> list:
    """Structural errors in a SARIF document produced by build(); empty
    when the document is well-formed."""
    errors: list = []
    if not _expect(errors, isinstance(doc, dict), "document is not an object"):
        return errors
    _expect(errors, doc.get("version") == SARIF_VERSION,
            f"version must be '{SARIF_VERSION}'")
    runs = doc.get("runs")
    if not _expect(errors, isinstance(runs, list) and runs,
                   "runs must be a non-empty array"):
        return errors
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not _expect(errors, isinstance(run, dict), f"{where} not object"):
            continue
        driver = (run.get("tool") or {}).get("driver")
        if not _expect(errors, isinstance(driver, dict),
                       f"{where}.tool.driver missing"):
            continue
        _expect(errors, bool(driver.get("name")),
                f"{where}.tool.driver.name missing")
        rules = driver.get("rules") or []
        rule_ids = []
        for qi, rule in enumerate(rules):
            rwhere = f"{where}.rules[{qi}]"
            if not _expect(errors, isinstance(rule, dict) and
                           bool(rule.get("id")), f"{rwhere}.id missing"):
                continue
            rule_ids.append(rule["id"])
            _expect(errors,
                    isinstance((rule.get("shortDescription") or {})
                               .get("text"), str),
                    f"{rwhere}.shortDescription.text missing")
        for si, result in enumerate(run.get("results") or []):
            swhere = f"{where}.results[{si}]"
            if not _expect(errors, isinstance(result, dict),
                           f"{swhere} not object"):
                continue
            _expect(errors,
                    isinstance((result.get("message") or {}).get("text"),
                               str),
                    f"{swhere}.message.text missing")
            rule_id = result.get("ruleId")
            if _expect(errors, isinstance(rule_id, str) and rule_id,
                       f"{swhere}.ruleId missing") and rule_ids:
                if _expect(errors, rule_id in rule_ids,
                           f"{swhere}.ruleId '{rule_id}' not in rules"):
                    index = result.get("ruleIndex")
                    if index is not None:
                        _expect(errors,
                                isinstance(index, int) and
                                0 <= index < len(rule_ids) and
                                rule_ids[index] == rule_id,
                                f"{swhere}.ruleIndex disagrees with ruleId")
            level = result.get("level")
            _expect(errors,
                    level in (None, "none", "note", "warning", "error"),
                    f"{swhere}.level invalid")
            for li, loc in enumerate(result.get("locations") or []):
                lwhere = f"{swhere}.locations[{li}]"
                phys = (loc or {}).get("physicalLocation")
                if not _expect(errors, isinstance(phys, dict),
                               f"{lwhere}.physicalLocation missing"):
                    continue
                art = phys.get("artifactLocation")
                if _expect(errors, isinstance(art, dict),
                           f"{lwhere}.artifactLocation missing"):
                    _expect(errors, isinstance(art.get("uri"), str),
                            f"{lwhere}.artifactLocation.uri missing")
                region = phys.get("region")
                if region is not None:
                    _expect(errors,
                            isinstance(region.get("startLine"), int) and
                            region["startLine"] >= 1,
                            f"{lwhere}.region.startLine must be >= 1")
            for pi, sup in enumerate(result.get("suppressions") or []):
                _expect(errors,
                        (sup or {}).get("kind") in ("inSource", "external"),
                        f"{swhere}.suppressions[{pi}].kind invalid")
    return errors
