#!/usr/bin/env python3
"""Self-test driver for srbsg-analyze, run under ctest (label: static).

Modes (one per ctest test):

  astjson   Run every hand-crafted clang-JSON AST under
            tests/analyze_fixtures/ast/ through the checks and compare
            the new findings against the fixture's embedded `x_expect`
            block.  Validates check logic without clang.
  baseline  Baseline write/read round-trip over an AST fixture
            (write-baseline silences, justifications survive rewrites)
            plus same-line / preceding-line suppression-comment rules,
            SARIF emission/validation, --prune-baseline staleness
            rules, and regex pre-pass scoping (--paths restriction,
            bench/ coverage).  No clang needed.
  cache     Incremental-cache correctness against a hermetic stub clang
            (the "compiler" replays pre-dumped JSON ASTs): cold run
            analyzes every TU, warm run reuses all of them, editing one
            TU re-analyzes only it and evicts its stale findings, and a
            clang version bump invalidates everything.  No clang
            needed.
  jobs      Parallel-analysis determinism against the same stub clang:
            `--jobs 4` must produce byte-identical stdout, the same
            exit code and the same clang invocation count as
            `--jobs 1` over an 8-TU program.  No clang needed.
  fixtures  Compile every tests/analyze_fixtures/*.cpp with the real
            clang and assert the analyzer reports exactly the seeded
            `// EXPECT: <check>` lines as new findings and exactly the
            `EXPECT-SUPPRESSED:` lines as suppressed.  Exits 77
            (ctest SKIP_RETURN_CODE) when no clang is installed.
  src       Run the analyzer over src/ against the committed baseline;
            any new finding fails.  Exits 77 without clang or without a
            compile database.

Exit status: 0 pass, 1 fail, 77 skipped (missing clang / compile db).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "analyze_fixtures")
AST_DIR = os.path.join(FIXTURE_DIR, "ast")
SKIP = 77

sys.path.insert(0, HERE)

import baseline as baseline_mod  # noqa: E402
import driver  # noqa: E402
import prepass  # noqa: E402
import sarif as sarif_mod  # noqa: E402

# `EXPECT:` requires the colon, so it never matches inside
# `EXPECT-SUPPRESSED:`.
EXPECT_RE = re.compile(r"EXPECT:\s*([a-z0-9-]+)")
EXPECT_SUPPRESSED_RE = re.compile(r"EXPECT-SUPPRESSED:\s*([a-z0-9-]+)")

_failures: list[str] = []


def fail(message: str) -> None:
    _failures.append(message)
    print(f"FAIL: {message}")


def run_analyzer(args: list[str]) -> tuple[int, dict, str]:
    """Runs `python3 tools/analyze <args>`; returns (rc, json, stderr)."""
    proc = subprocess.run([sys.executable, HERE, *args],
                          capture_output=True, text=True)
    data: dict = {}
    if "--json" in args and proc.stdout.strip():
        try:
            data = json.loads(proc.stdout)
        except json.JSONDecodeError:
            pass
    return proc.returncode, data, proc.stderr


def parse_expectations(path: str) -> tuple[set, set]:
    """((line, check) sets for EXPECT and EXPECT-SUPPRESSED annotations."""
    expect_new: set = set()
    expect_suppressed: set = set()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            for match in EXPECT_SUPPRESSED_RE.finditer(line):
                expect_suppressed.add((lineno, match.group(1)))
            for match in EXPECT_RE.finditer(line):
                expect_new.add((lineno, match.group(1)))
    return expect_new, expect_suppressed


def report_diff(label: str, want: set, got: set) -> None:
    for item in sorted(want - got):
        fail(f"{label}: expected but missing: {item}")
    for item in sorted(got - want):
        fail(f"{label}: unexpected: {item}")


# -- astjson ----------------------------------------------------------------

def mode_astjson() -> int:
    fixtures = sorted(f for f in os.listdir(AST_DIR) if f.endswith(".json"))
    if not fixtures:
        fail("no AST fixtures found")
        return 1
    for name in fixtures:
        path = os.path.join(AST_DIR, name)
        with open(path, encoding="utf-8") as fh:
            spec = json.load(fh)
        want = {(e["check"], e["file"], e["line"])
                for e in spec["x_expect"]["findings"]}
        rc, data, stderr = run_analyzer(
            ["--ast-json", path, "--no-baseline", "--json"])
        if rc not in (0, 1):
            fail(f"{name}: analyzer exited {rc}: {stderr.strip()}")
            continue
        got = {(f["check"], f["file"], f["line"]) for f in data.get("new", [])}
        report_diff(name, want, got)
        if len(data.get("new", [])) != len(got):
            fail(f"{name}: duplicate findings reported")
        if data.get("baselined") or data.get("suppressed"):
            fail(f"{name}: ast-json mode produced baselined/suppressed "
                 "findings")
        if not _failures:
            print(f"ok: {name} ({len(got)} finding(s))")
    return 1 if _failures else 0


# -- baseline / suppression -------------------------------------------------

def mode_baseline() -> int:
    ast_fixture = os.path.join(AST_DIR, "a1_width.json")
    with open(ast_fixture, encoding="utf-8") as fh:
        expected = len(json.load(fh)["x_expect"]["findings"])
    with tempfile.TemporaryDirectory(prefix="srbsg-analyze-") as tmp:
        base_path = os.path.join(tmp, "baseline.json")

        rc, data, _ = run_analyzer(
            ["--ast-json", ast_fixture, "--no-baseline", "--json"])
        if rc != 1 or len(data.get("new", [])) != expected:
            fail(f"pre-baseline run: expected rc 1 with {expected} new "
                 f"finding(s), got rc {rc} with {len(data.get('new', []))}")

        rc, _, stderr = run_analyzer(
            ["--ast-json", ast_fixture, "--write-baseline",
             "--baseline", base_path])
        if rc != 0 or not os.path.isfile(base_path):
            fail(f"--write-baseline failed (rc {rc}): {stderr.strip()}")
            return 1

        rc, data, _ = run_analyzer(
            ["--ast-json", ast_fixture, "--baseline", base_path, "--json"])
        if rc != 0:
            fail(f"baselined run: expected rc 0, got {rc}")
        if data.get("new"):
            fail(f"baselined run: {len(data['new'])} finding(s) escaped the "
                 "baseline")
        if len(data.get("baselined", [])) != expected:
            fail(f"baselined run: expected {expected} baselined finding(s), "
                 f"got {len(data.get('baselined', []))}")

        # Justifications of surviving entries survive a rewrite.
        with open(base_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["findings"][0]["justification"] = "guarded by width check"
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        rc, _, _ = run_analyzer(
            ["--ast-json", ast_fixture, "--write-baseline",
             "--baseline", base_path])
        with open(base_path, encoding="utf-8") as fh:
            rewritten = json.load(fh)
        kept = [e for e in rewritten["findings"]
                if e["justification"] == "guarded by width check"]
        if rc != 0 or len(kept) != 1:
            fail("justification was not preserved across --write-baseline")
        print(f"ok: baseline round-trip ({expected} finding(s))")

        # Suppression comments: same line and preceding line.
        src = os.path.join(tmp, "suppressed.cpp")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write("int a;  // srbsg-analyze: suppress(a1-width) same\n"
                     "// srbsg-analyze: suppress(a2-determinism,a4-state) two\n"
                     "int b;\n"
                     "int c;\n")
        index = baseline_mod.SuppressionIndex(tmp)
        cases = [
            ({"file": "suppressed.cpp", "line": 1, "check": "a1-width"}, True),
            ({"file": "suppressed.cpp", "line": 3, "check": "a2-determinism"},
             True),
            ({"file": "suppressed.cpp", "line": 3, "check": "a4-state"}, True),
            ({"file": "suppressed.cpp", "line": 3, "check": "a1-width"},
             False),
            ({"file": "suppressed.cpp", "line": 4, "check": "a2-determinism"},
             False),
        ]
        for finding, want in cases:
            if index.is_suppressed(finding) != want:
                fail(f"suppression rule mismatch for {finding} "
                     f"(expected {want})")
        print("ok: suppression comment rules")

        # SARIF emission: the report exists, validates structurally, and
        # carries one result per new finding with a registered rule.
        sarif_path = os.path.join(tmp, "report.sarif")
        rc, data, stderr = run_analyzer(
            ["--ast-json", ast_fixture, "--no-baseline", "--json",
             "--sarif", sarif_path])
        if rc != 1 or not os.path.isfile(sarif_path):
            fail(f"--sarif run: expected rc 1 and a report file, got rc "
                 f"{rc}: {stderr.strip()}")
        else:
            with open(sarif_path, encoding="utf-8") as fh:
                doc = json.load(fh)
            problems = sarif_mod.validate(doc)
            for problem in problems:
                fail(f"SARIF validation: {problem}")
            results = doc["runs"][0]["results"]
            if len(results) != expected:
                fail(f"SARIF: expected {expected} result(s), got "
                     f"{len(results)}")
            rule_ids = {r["id"]
                        for r in doc["runs"][0]["tool"]["driver"]["rules"]}
            stray = {r["ruleId"] for r in results} - rule_ids
            if stray:
                fail(f"SARIF: result ruleId(s) missing from driver rules: "
                     f"{sorted(stray)}")
            if not problems and len(results) == expected and not stray:
                print(f"ok: SARIF emission ({len(results)} result(s))")

        # Pre-pass scoping: bench/ is covered, --paths restricts the
        # scan, and explicit --sources survive the restriction.
        everything = prepass.prepass_files(REPO_ROOT, [], [])
        if not any(f.startswith("bench/") for f in everything):
            fail("pre-pass file set does not cover bench/")
        fake_tus = [{"rel": "src/wl/one.cpp"}, {"rel": "bench/two.cpp"}]
        scoped = prepass.prepass_files(REPO_ROOT, fake_tus, [], ["bench"])
        if "bench/two.cpp" not in scoped:
            fail(f"--paths bench dropped a bench TU from the pre-pass: "
                 f"{scoped}")
        if any(f.startswith("src/") for f in scoped):
            fail(f"--paths bench leaked src/ files into the pre-pass: "
                 f"{[f for f in scoped if f.startswith('src/')]}")
        kept = prepass.prepass_files(REPO_ROOT, fake_tus,
                                     ["tests/extra.cpp"], ["src"])
        if "tests/extra.cpp" not in kept:
            fail("explicit --sources file dropped by --paths scoping")
        print("ok: pre-pass scoping (bench/ coverage, --paths, --sources)")

        # --prune-baseline: entries for deleted files or vanished
        # contexts are dropped (and printed); live entries survive with
        # their justifications.
        prune_repo = os.path.join(tmp, "prunerepo")
        os.makedirs(prune_repo)
        live = os.path.join(prune_repo, "live.cpp")
        with open(live, "w", encoding="utf-8") as fh:
            fh.write("void keep_me() {}\n")
        prune_base = os.path.join(tmp, "prune-baseline.json")
        with open(prune_base, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "findings": [
                {"check": "a1-width", "file": "live.cpp",
                 "context": "keep_me", "message": "narrowed",
                 "justification": "intentional"},
                {"check": "a1-width", "file": "live.cpp",
                 "context": "renamed_away", "message": "narrowed"},
                {"check": "a4-state", "file": "deleted.cpp",
                 "context": "", "message": "mutable static"},
            ]}, fh)
        proc = subprocess.run(
            [sys.executable, HERE, "--prune-baseline",
             "--baseline", prune_base, "--repo-root", prune_repo],
            capture_output=True, text=True)
        with open(prune_base, encoding="utf-8") as fh:
            remaining = json.load(fh)["findings"]
        if proc.returncode != 0:
            fail(f"--prune-baseline exited {proc.returncode}: "
                 f"{proc.stderr.strip()}")
        elif len(remaining) != 1 or remaining[0]["context"] != "keep_me" \
                or remaining[0].get("justification") != "intentional":
            fail(f"--prune-baseline kept the wrong entries: {remaining}")
        elif "deleted.cpp" not in proc.stdout \
                or "renamed_away" not in proc.stdout \
                or "2 stale baseline entrie(s) pruned" not in proc.stdout:
            fail(f"--prune-baseline did not report what it pruned:\n"
                 f"{proc.stdout}")
        else:
            print("ok: --prune-baseline drops stale entries and reports "
                  "them")

        # Regression: rand() in a bench/ TU is caught end to end.
        bench_dir = os.path.join(tmp, "bench")
        os.makedirs(bench_dir, exist_ok=True)
        with open(os.path.join(bench_dir, "leaky.cpp"), "w",
                  encoding="utf-8") as fh:
            fh.write("#include <cstdlib>\n"
                     "int jitter() { return std::rand(); }\n")
        scan = prepass.prepass_files(tmp, [{"rel": "bench/leaky.cpp"}], [])
        hits = prepass.run_prepass(tmp, scan)
        got = {(f["check"], f["file"], f["line"]) for f in hits}
        if got != {("a2-determinism", "bench/leaky.cpp", 2)}:
            fail(f"bench/ pre-pass regression: expected one a2 hit at "
                 f"bench/leaky.cpp:2, got {sorted(got)}")
        else:
            print("ok: pre-pass catches rand() in bench/")
    return 1 if _failures else 0


# -- cache (hermetic stub clang) --------------------------------------------

_STUB_CLANG = """#!/usr/bin/env python3
# Hermetic stand-in for clang: the "sources" it compiles are pre-dumped
# JSON ASTs, so -ast-dump=json is just cat.  Each dump is appended to
# FAKE_CLANG_LOG so the selftest can count real invocations.
import os
import sys

if "--version" in sys.argv:
    print(os.environ.get("FAKE_CLANG_VERSION", "fake clang 1.0"))
    sys.exit(0)
path = sys.argv[-1]
log = os.environ.get("FAKE_CLANG_LOG")
if log:
    with open(log, "a", encoding="utf-8") as fh:
        fh.write(path + "\\n")
sys.stdout.write(open(path, encoding="utf-8").read())
"""


def _fake_tu(rel: str, var_name: str, mutable: bool) -> str:
    """A minimal clang-JSON dump: one namespace-scope variable, which
    trips a4-state at line 3 when mutable."""
    qual = "unsigned long" if mutable else "const unsigned long"
    return json.dumps({
        "id": "0x1", "kind": "TranslationUnitDecl",
        "inner": [{
            "id": "0x10", "kind": "NamespaceDecl", "name": "srbsg",
            "loc": {"file": rel, "line": 2, "col": 11},
            "range": {"begin": {"line": 2, "col": 1},
                      "end": {"line": 4, "col": 1}},
            "inner": [{
                "id": "0x11", "kind": "VarDecl", "name": var_name,
                "loc": {"line": 3, "col": 15},
                "range": {"begin": {"line": 3, "col": 1},
                          "end": {"line": 3, "col": 27}},
                "type": {"qualType": qual},
            }],
        }],
    })


def mode_cache() -> int:
    with tempfile.TemporaryDirectory(prefix="srbsg-cache-") as tmp:
        wl_dir = os.path.join(tmp, "src", "wl")
        os.makedirs(wl_dir)
        alpha = os.path.join(wl_dir, "alpha.cpp")
        beta = os.path.join(wl_dir, "beta.cpp")
        with open(alpha, "w", encoding="utf-8") as fh:
            fh.write(_fake_tu("src/wl/alpha.cpp", "g_alpha", True))
        with open(beta, "w", encoding="utf-8") as fh:
            fh.write(_fake_tu("src/wl/beta.cpp", "g_beta", True))
        stub = os.path.join(tmp, "fake-clang")
        with open(stub, "w", encoding="utf-8") as fh:
            fh.write(_STUB_CLANG)
        os.chmod(stub, 0o755)
        log = os.path.join(tmp, "clang.log")
        os.environ["FAKE_CLANG_LOG"] = log
        os.environ["FAKE_CLANG_VERSION"] = "fake clang version 1.0"
        base_args = ["--repo-root", tmp, "--clang", stub, "--no-pre-pass",
                     "--no-baseline", "--json",
                     "--cache", os.path.join(tmp, "cache.json"),
                     "--sources", alpha, beta]

        def run() -> tuple[int, dict, str, int]:
            open(log, "w").close()
            rc, data, stderr = run_analyzer(base_args)
            with open(log, encoding="utf-8") as fh:
                invoked = [line.strip() for line in fh if line.strip()]
            return rc, data, stderr, len(invoked)

        def findings_of(data: dict) -> set:
            return {(f["check"], f["file"], f["line"])
                    for f in data.get("new", [])}

        both = {("a4-state", "src/wl/alpha.cpp", 3),
                ("a4-state", "src/wl/beta.cpp", 3)}

        rc, data, stderr, invoked = run()
        if rc != 1 or findings_of(data) != both or invoked != 2:
            fail(f"cold run: expected rc 1, both findings, 2 clang "
                 f"invocation(s); got rc {rc}, {sorted(findings_of(data))}, "
                 f"{invoked} invocation(s): {stderr.strip()}")
        else:
            print("ok: cold run analyzes both TUs")

        rc, data, stderr, invoked = run()
        if rc != 1 or findings_of(data) != both or invoked != 0:
            fail(f"warm run: expected rc 1, both findings, 0 clang "
                 f"invocation(s); got rc {rc}, {sorted(findings_of(data))}, "
                 f"{invoked} invocation(s)")
        elif "2 TU(s) reused, 0 analyzed" not in stderr:
            fail(f"warm run: cache stats missing from stderr: "
                 f"{stderr.strip()}")
        else:
            print("ok: warm run reuses both TUs without clang")

        # Edit alpha so its violation disappears: only alpha re-analyzes
        # and its stale finding is evicted.
        with open(alpha, "w", encoding="utf-8") as fh:
            fh.write(_fake_tu("src/wl/alpha.cpp", "g_alpha", False))
        rc, data, stderr, invoked = run()
        want = {("a4-state", "src/wl/beta.cpp", 3)}
        if rc != 1 or findings_of(data) != want or invoked != 1:
            fail(f"edited run: expected rc 1, beta-only finding, 1 clang "
                 f"invocation(s); got rc {rc}, {sorted(findings_of(data))}, "
                 f"{invoked} invocation(s)")
        else:
            print("ok: editing one TU re-analyzes only it and evicts its "
                  "stale finding")

        # A clang version bump invalidates every entry.
        os.environ["FAKE_CLANG_VERSION"] = "fake clang version 2.0"
        rc, data, stderr, invoked = run()
        if rc != 1 or findings_of(data) != want or invoked != 2:
            fail(f"version-bump run: expected rc 1 and 2 clang "
                 f"invocation(s); got rc {rc}, {invoked} invocation(s)")
        else:
            print("ok: clang version bump invalidates the whole cache")

        del os.environ["FAKE_CLANG_LOG"]
        del os.environ["FAKE_CLANG_VERSION"]
    return 1 if _failures else 0


# -- jobs (hermetic stub clang) ---------------------------------------------

def mode_jobs() -> int:
    """Parallel per-TU analysis is byte-identical to serial: the same
    TU set run with --jobs 1 and --jobs 4 must produce the exact same
    stdout (finding order included), the same exit code, and the same
    number of clang invocations."""
    with tempfile.TemporaryDirectory(prefix="srbsg-jobs-") as tmp:
        wl_dir = os.path.join(tmp, "src", "wl")
        os.makedirs(wl_dir)
        sources: list[str] = []
        # Enough TUs that a 4-worker pool genuinely interleaves; odd
        # ones are mutable (one a4-state finding each), even ones clean.
        for i in range(8):
            rel = f"src/wl/tu{i}.cpp"
            path = os.path.join(wl_dir, f"tu{i}.cpp")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(_fake_tu(rel, f"g_state_{i}", i % 2 == 1))
            sources.append(path)
        stub = os.path.join(tmp, "fake-clang")
        with open(stub, "w", encoding="utf-8") as fh:
            fh.write(_STUB_CLANG)
        os.chmod(stub, 0o755)
        log = os.path.join(tmp, "clang.log")
        os.environ["FAKE_CLANG_LOG"] = log
        os.environ["FAKE_CLANG_VERSION"] = "fake clang version 1.0"

        def run(jobs: int) -> tuple[int, str, int]:
            open(log, "w").close()
            proc = subprocess.run(
                [sys.executable, HERE, "--repo-root", tmp, "--clang", stub,
                 "--no-pre-pass", "--no-baseline", "--json",
                 "--jobs", str(jobs), "--sources", *sources],
                capture_output=True, text=True)
            with open(log, encoding="utf-8") as fh:
                invoked = sum(1 for line in fh if line.strip())
            return proc.returncode, proc.stdout, invoked

        serial_rc, serial_out, serial_invoked = run(1)
        parallel_rc, parallel_out, parallel_invoked = run(4)
        if serial_rc != 1:
            fail(f"serial run: expected rc 1 (4 seeded findings), got "
                 f"{serial_rc}")
        if serial_invoked != 8 or parallel_invoked != 8:
            fail(f"expected 8 clang invocations per run, got "
                 f"{serial_invoked} serial / {parallel_invoked} parallel")
        if parallel_rc != serial_rc:
            fail(f"exit codes diverge: serial {serial_rc}, parallel "
                 f"{parallel_rc}")
        if parallel_out != serial_out:
            fail("parallel stdout is not byte-identical to serial:\n"
                 f"--- serial ---\n{serial_out}\n"
                 f"--- parallel ---\n{parallel_out}")
        try:
            findings = json.loads(serial_out).get("new", [])
        except json.JSONDecodeError:
            findings = []
        if len(findings) != 4:
            fail(f"expected 4 seeded findings, got {len(findings)}")
        if not _failures:
            print("ok: --jobs 4 output byte-identical to --jobs 1 "
                  f"({len(findings)} finding(s), 8 TUs)")

        del os.environ["FAKE_CLANG_LOG"]
        del os.environ["FAKE_CLANG_VERSION"]
    return 1 if _failures else 0


# -- fixtures (needs clang) -------------------------------------------------

def mode_fixtures() -> int:
    if driver.find_clang(None) is None:
        print("selftest: clang not found — skipping compiled-fixture checks")
        return SKIP
    fixtures = sorted(f for f in os.listdir(FIXTURE_DIR) if f.endswith(".cpp"))
    if not fixtures:
        fail("no source fixtures found")
        return 1
    for name in fixtures:
        path = os.path.join(FIXTURE_DIR, name)
        rel = os.path.relpath(path, REPO_ROOT)
        want_new, want_suppressed = parse_expectations(path)
        rc, data, stderr = run_analyzer(
            ["--sources", path, "--no-baseline", "--json", "--",
             "-std=c++20"])
        if rc not in (0, 1):
            fail(f"{name}: analyzer exited {rc}: {stderr.strip()}")
            continue
        if data.get("errors"):
            fail(f"{name}: clang parse errors: {data['errors']}")
            continue
        stray = [f for f in data.get("new", []) + data.get("suppressed", [])
                 if f["file"] != rel]
        if stray:
            fail(f"{name}: findings attributed outside the fixture: {stray}")
        got_new = {(f["line"], f["check"])
                   for f in data.get("new", []) if f["file"] == rel}
        got_suppressed = {(f["line"], f["check"])
                          for f in data.get("suppressed", [])
                          if f["file"] == rel}
        report_diff(f"{name} (new)", want_new, got_new)
        report_diff(f"{name} (suppressed)", want_suppressed, got_suppressed)
        if len([f for f in data.get("new", []) if f["file"] == rel]) \
                != len(got_new):
            fail(f"{name}: duplicate findings reported")
        if not _failures:
            kind = "bad" if want_new or want_suppressed else "clean"
            print(f"ok: {name} [{kind}] ({len(got_new)} new, "
                  f"{len(got_suppressed)} suppressed)")
    return 1 if _failures else 0


# -- src (needs clang + compile db) -----------------------------------------

def mode_src(compile_db: str | None) -> int:
    if driver.find_clang(None) is None:
        print("selftest: clang not found — skipping src/ analysis")
        return SKIP
    args = ["--json"]
    if compile_db:
        if not os.path.isfile(compile_db):
            print(f"selftest: {compile_db} not found — skipping src/ "
                  "analysis")
            return SKIP
        args += ["--compile-db", compile_db]
    rc, data, stderr = run_analyzer(args)
    if rc == 2:
        print(f"selftest: src/ analysis unavailable: {stderr.strip()} — "
              "skipping")
        return SKIP
    for finding in data.get("new", []):
        fail(f"new finding in src/: {finding['file']}:{finding['line']}: "
             f"{finding['check']}: {finding['message']}")
    if rc != 0:
        fail(f"analyzer exited {rc} over src/")
    if not _failures:
        print(f"ok: src/ baseline-clean ({len(data.get('baselined', []))} "
              f"baselined, {len(data.get('suppressed', []))} suppressed)")
    return 1 if _failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", required=True,
                        choices=["astjson", "baseline", "cache", "jobs",
                                 "fixtures", "src"])
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json for --mode src")
    args = parser.parse_args()
    if args.mode == "astjson":
        return mode_astjson()
    if args.mode == "baseline":
        return mode_baseline()
    if args.mode == "cache":
        return mode_cache()
    if args.mode == "jobs":
        return mode_jobs()
    if args.mode == "fixtures":
        return mode_fixtures()
    return mode_src(args.compile_db)


if __name__ == "__main__":
    sys.exit(main())
