#!/usr/bin/env python3
"""Self-test driver for srbsg-analyze, run under ctest (label: static).

Modes (one per ctest test):

  astjson   Run every hand-crafted clang-JSON AST under
            tests/analyze_fixtures/ast/ through the checks and compare
            the new findings against the fixture's embedded `x_expect`
            block.  Validates check logic without clang.
  baseline  Baseline write/read round-trip over an AST fixture
            (write-baseline silences, justifications survive rewrites)
            plus same-line / preceding-line suppression-comment rules.
            No clang needed.
  fixtures  Compile every tests/analyze_fixtures/*.cpp with the real
            clang and assert the analyzer reports exactly the seeded
            `// EXPECT: <check>` lines as new findings and exactly the
            `EXPECT-SUPPRESSED:` lines as suppressed.  Exits 77
            (ctest SKIP_RETURN_CODE) when no clang is installed.
  src       Run the analyzer over src/ against the committed baseline;
            any new finding fails.  Exits 77 without clang or without a
            compile database.

Exit status: 0 pass, 1 fail, 77 skipped (missing clang / compile db).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "analyze_fixtures")
AST_DIR = os.path.join(FIXTURE_DIR, "ast")
SKIP = 77

sys.path.insert(0, HERE)

import baseline as baseline_mod  # noqa: E402
import driver  # noqa: E402

# `EXPECT:` requires the colon, so it never matches inside
# `EXPECT-SUPPRESSED:`.
EXPECT_RE = re.compile(r"EXPECT:\s*([a-z0-9-]+)")
EXPECT_SUPPRESSED_RE = re.compile(r"EXPECT-SUPPRESSED:\s*([a-z0-9-]+)")

_failures: list[str] = []


def fail(message: str) -> None:
    _failures.append(message)
    print(f"FAIL: {message}")


def run_analyzer(args: list[str]) -> tuple[int, dict, str]:
    """Runs `python3 tools/analyze <args>`; returns (rc, json, stderr)."""
    proc = subprocess.run([sys.executable, HERE, *args],
                          capture_output=True, text=True)
    data: dict = {}
    if "--json" in args and proc.stdout.strip():
        try:
            data = json.loads(proc.stdout)
        except json.JSONDecodeError:
            pass
    return proc.returncode, data, proc.stderr


def parse_expectations(path: str) -> tuple[set, set]:
    """((line, check) sets for EXPECT and EXPECT-SUPPRESSED annotations."""
    expect_new: set = set()
    expect_suppressed: set = set()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            for match in EXPECT_SUPPRESSED_RE.finditer(line):
                expect_suppressed.add((lineno, match.group(1)))
            for match in EXPECT_RE.finditer(line):
                expect_new.add((lineno, match.group(1)))
    return expect_new, expect_suppressed


def report_diff(label: str, want: set, got: set) -> None:
    for item in sorted(want - got):
        fail(f"{label}: expected but missing: {item}")
    for item in sorted(got - want):
        fail(f"{label}: unexpected: {item}")


# -- astjson ----------------------------------------------------------------

def mode_astjson() -> int:
    fixtures = sorted(f for f in os.listdir(AST_DIR) if f.endswith(".json"))
    if not fixtures:
        fail("no AST fixtures found")
        return 1
    for name in fixtures:
        path = os.path.join(AST_DIR, name)
        with open(path, encoding="utf-8") as fh:
            spec = json.load(fh)
        want = {(e["check"], e["file"], e["line"])
                for e in spec["x_expect"]["findings"]}
        rc, data, stderr = run_analyzer(
            ["--ast-json", path, "--no-baseline", "--json"])
        if rc not in (0, 1):
            fail(f"{name}: analyzer exited {rc}: {stderr.strip()}")
            continue
        got = {(f["check"], f["file"], f["line"]) for f in data.get("new", [])}
        report_diff(name, want, got)
        if len(data.get("new", [])) != len(got):
            fail(f"{name}: duplicate findings reported")
        if data.get("baselined") or data.get("suppressed"):
            fail(f"{name}: ast-json mode produced baselined/suppressed "
                 "findings")
        if not _failures:
            print(f"ok: {name} ({len(got)} finding(s))")
    return 1 if _failures else 0


# -- baseline / suppression -------------------------------------------------

def mode_baseline() -> int:
    ast_fixture = os.path.join(AST_DIR, "a1_width.json")
    with open(ast_fixture, encoding="utf-8") as fh:
        expected = len(json.load(fh)["x_expect"]["findings"])
    with tempfile.TemporaryDirectory(prefix="srbsg-analyze-") as tmp:
        base_path = os.path.join(tmp, "baseline.json")

        rc, data, _ = run_analyzer(
            ["--ast-json", ast_fixture, "--no-baseline", "--json"])
        if rc != 1 or len(data.get("new", [])) != expected:
            fail(f"pre-baseline run: expected rc 1 with {expected} new "
                 f"finding(s), got rc {rc} with {len(data.get('new', []))}")

        rc, _, stderr = run_analyzer(
            ["--ast-json", ast_fixture, "--write-baseline",
             "--baseline", base_path])
        if rc != 0 or not os.path.isfile(base_path):
            fail(f"--write-baseline failed (rc {rc}): {stderr.strip()}")
            return 1

        rc, data, _ = run_analyzer(
            ["--ast-json", ast_fixture, "--baseline", base_path, "--json"])
        if rc != 0:
            fail(f"baselined run: expected rc 0, got {rc}")
        if data.get("new"):
            fail(f"baselined run: {len(data['new'])} finding(s) escaped the "
                 "baseline")
        if len(data.get("baselined", [])) != expected:
            fail(f"baselined run: expected {expected} baselined finding(s), "
                 f"got {len(data.get('baselined', []))}")

        # Justifications of surviving entries survive a rewrite.
        with open(base_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["findings"][0]["justification"] = "guarded by width check"
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        rc, _, _ = run_analyzer(
            ["--ast-json", ast_fixture, "--write-baseline",
             "--baseline", base_path])
        with open(base_path, encoding="utf-8") as fh:
            rewritten = json.load(fh)
        kept = [e for e in rewritten["findings"]
                if e["justification"] == "guarded by width check"]
        if rc != 0 or len(kept) != 1:
            fail("justification was not preserved across --write-baseline")
        print(f"ok: baseline round-trip ({expected} finding(s))")

        # Suppression comments: same line and preceding line.
        src = os.path.join(tmp, "suppressed.cpp")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write("int a;  // srbsg-analyze: suppress(a1-width) same\n"
                     "// srbsg-analyze: suppress(a2-determinism,a4-state) two\n"
                     "int b;\n"
                     "int c;\n")
        index = baseline_mod.SuppressionIndex(tmp)
        cases = [
            ({"file": "suppressed.cpp", "line": 1, "check": "a1-width"}, True),
            ({"file": "suppressed.cpp", "line": 3, "check": "a2-determinism"},
             True),
            ({"file": "suppressed.cpp", "line": 3, "check": "a4-state"}, True),
            ({"file": "suppressed.cpp", "line": 3, "check": "a1-width"},
             False),
            ({"file": "suppressed.cpp", "line": 4, "check": "a2-determinism"},
             False),
        ]
        for finding, want in cases:
            if index.is_suppressed(finding) != want:
                fail(f"suppression rule mismatch for {finding} "
                     f"(expected {want})")
        print("ok: suppression comment rules")
    return 1 if _failures else 0


# -- fixtures (needs clang) -------------------------------------------------

def mode_fixtures() -> int:
    if driver.find_clang(None) is None:
        print("selftest: clang not found — skipping compiled-fixture checks")
        return SKIP
    fixtures = sorted(f for f in os.listdir(FIXTURE_DIR) if f.endswith(".cpp"))
    if not fixtures:
        fail("no source fixtures found")
        return 1
    for name in fixtures:
        path = os.path.join(FIXTURE_DIR, name)
        rel = os.path.relpath(path, REPO_ROOT)
        want_new, want_suppressed = parse_expectations(path)
        rc, data, stderr = run_analyzer(
            ["--sources", path, "--no-baseline", "--json", "--",
             "-std=c++20"])
        if rc not in (0, 1):
            fail(f"{name}: analyzer exited {rc}: {stderr.strip()}")
            continue
        if data.get("errors"):
            fail(f"{name}: clang parse errors: {data['errors']}")
            continue
        stray = [f for f in data.get("new", []) + data.get("suppressed", [])
                 if f["file"] != rel]
        if stray:
            fail(f"{name}: findings attributed outside the fixture: {stray}")
        got_new = {(f["line"], f["check"])
                   for f in data.get("new", []) if f["file"] == rel}
        got_suppressed = {(f["line"], f["check"])
                          for f in data.get("suppressed", [])
                          if f["file"] == rel}
        report_diff(f"{name} (new)", want_new, got_new)
        report_diff(f"{name} (suppressed)", want_suppressed, got_suppressed)
        if len([f for f in data.get("new", []) if f["file"] == rel]) \
                != len(got_new):
            fail(f"{name}: duplicate findings reported")
        if not _failures:
            kind = "bad" if want_new or want_suppressed else "clean"
            print(f"ok: {name} [{kind}] ({len(got_new)} new, "
                  f"{len(got_suppressed)} suppressed)")
    return 1 if _failures else 0


# -- src (needs clang + compile db) -----------------------------------------

def mode_src(compile_db: str | None) -> int:
    if driver.find_clang(None) is None:
        print("selftest: clang not found — skipping src/ analysis")
        return SKIP
    args = ["--json"]
    if compile_db:
        if not os.path.isfile(compile_db):
            print(f"selftest: {compile_db} not found — skipping src/ "
                  "analysis")
            return SKIP
        args += ["--compile-db", compile_db]
    rc, data, stderr = run_analyzer(args)
    if rc == 2:
        print(f"selftest: src/ analysis unavailable: {stderr.strip()} — "
              "skipping")
        return SKIP
    for finding in data.get("new", []):
        fail(f"new finding in src/: {finding['file']}:{finding['line']}: "
             f"{finding['check']}: {finding['message']}")
    if rc != 0:
        fail(f"analyzer exited {rc} over src/")
    if not _failures:
        print(f"ok: src/ baseline-clean ({len(data.get('baselined', []))} "
              f"baselined, {len(data.get('suppressed', []))} suppressed)")
    return 1 if _failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", required=True,
                        choices=["astjson", "baseline", "fixtures", "src"])
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json for --mode src")
    args = parser.parse_args()
    if args.mode == "astjson":
        return mode_astjson()
    if args.mode == "baseline":
        return mode_baseline()
    if args.mode == "fixtures":
        return mode_fixtures()
    return mode_src(args.compile_db)


if __name__ == "__main__":
    sys.exit(main())
