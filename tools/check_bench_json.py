#!/usr/bin/env python3
"""Validate a machine-readable bench JSON (perf_sweep / perf_write_path /
perf_epoch / perf_stall).

Dispatches on the top-level "bench" field. For every bench the schema
(schema_version 1), field types, and internal consistency are checked
(speedups consistent with wall times, outcomes marked identical).
Absolute timing numbers are NOT gated — CI machines vary — but a
malformed file or a determinism failure exits nonzero.

With --compare REF.json the ratio metrics (engine/scenario speedups,
which divide out machine speed) are additionally compared against a
committed reference run of the same bench: any ratio more than
--threshold (default 10%) below the reference prints a regression
WARNING on stderr.  By default warnings do not change the exit status —
absolute gating on shared CI hardware would flake — they exist to make
a perf regression visible in the job log.  With --strict any such
warning turns into exit status 1, for jobs that want the regression
surfaced as a failed step (CI runs the strict compare under
continue-on-error so it shows red without blocking merges).  Comparing
different benches is an error; a reference with a different grid/config
is noted and skipped.

Usage: check_bench_json.py [--compare REF.json [--strict]] BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(msg: str) -> "NoReturn":  # noqa: F821 - py3.8-compatible annotation
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def require_fields(obj: dict, spec: dict, where: str) -> None:
    for name, types in spec.items():
        require(name in obj, f"{where}: missing field '{name}'")
        value = obj[name]
        require(
            not isinstance(value, bool) and isinstance(value, types),
            f"{where}: field '{name}' has type {type(value).__name__}",
        )


def validate_perf_sweep(doc: dict) -> str:
    grid = doc.get("grid")
    require(isinstance(grid, dict), "grid must be an object")
    require_fields(
        grid,
        {
            "entries": int,
            "lines": int,
            "endurance": int,
            "endurance_variation": (int, float),
            "seeds": int,
            "threads": int,
        },
        "grid",
    )
    require(grid["entries"] > 0, "grid.entries must be positive")
    require(grid["lines"] > 0 and grid["lines"] & (grid["lines"] - 1) == 0,
            "grid.lines must be a positive power of two")

    engines = doc.get("engines")
    require(isinstance(engines, list) and len(engines) == 2, "engines must list two engines")
    names = []
    for engine in engines:
        require(isinstance(engine, dict), "engine entries must be objects")
        require_fields(
            engine,
            {
                "name": str,
                "wall_ms": (int, float),
                "writes": int,
                "writes_per_sec": (int, float),
                "alloc_calls": int,
                "alloc_bytes": int,
                "peak_rss_kb": int,
            },
            f"engine '{engine.get('name', '?')}'",
        )
        require(engine["wall_ms"] > 0, f"engine '{engine['name']}': wall_ms must be positive")
        names.append(engine["name"])
    require(names == ["v1_per_entry_fresh_banks", "v2_arena_chunked"],
            f"unexpected engine names/order: {names}")
    v1, v2 = engines
    require("bank_builds" in v2 and "bank_reuses" in v2,
            "v2 engine must report bank_builds/bank_reuses")
    require(v1["writes"] == v2["writes"],
            f"engines simulated different write counts: {v1['writes']} vs {v2['writes']}")

    require(isinstance(doc.get("speedup"), (int, float)), "speedup must be a number")
    expected = v1["wall_ms"] / v2["wall_ms"]
    require(abs(doc["speedup"] - expected) <= 0.01 * expected + 0.01,
            f"speedup {doc['speedup']} inconsistent with wall times ({expected:.3f})")

    require(doc.get("identical") is True, "outcomes were not bit-identical across engines")

    return (f"{grid['entries']} entries, speedup {doc['speedup']:.2f}x, "
            f"identical outcomes")


SCENARIO_NAMES = ("raa_loop", "rta_loop", "fail_stop", "blanket")


def validate_perf_write_path(doc: dict) -> str:
    config = doc.get("config")
    require(isinstance(config, dict), "config must be an object")
    require_fields(
        config,
        {
            "lines": int,
            "endurance_steady": int,
            "endurance_fail": int,
            "writes_per_scenario": int,
            "blanket_block": int,
        },
        "config",
    )
    require(config["lines"] > 0 and config["lines"] & (config["lines"] - 1) == 0,
            "config.lines must be a positive power of two")
    require(config["endurance_steady"] > config["endurance_fail"],
            "config: steady endurance must exceed fail_stop endurance")

    scenarios = doc.get("scenarios")
    require(isinstance(scenarios, list) and scenarios, "scenarios must be a non-empty list")
    seen = set()
    for sc in scenarios:
        require(isinstance(sc, dict), "scenario entries must be objects")
        require_fields(
            sc,
            {
                "scheme": str,
                "name": str,
                "per_write_ms": (int, float),
                "batched_ms": (int, float),
                "speedup": (int, float),
                "writes": int,
                "movements": int,
                "total_ns": int,
            },
            f"scenario '{sc.get('scheme', '?')}/{sc.get('name', '?')}'",
        )
        where = f"scenario '{sc['scheme']}/{sc['name']}'"
        require(sc["name"] in SCENARIO_NAMES, f"{where}: unknown scenario name")
        require(isinstance(sc.get("failed"), bool), f"{where}: 'failed' must be a boolean")
        require(sc.get("identical") is True, f"{where}: not bit-identical to the per-write loop")
        if sc["batched_ms"] > 0:
            expected = sc["per_write_ms"] / sc["batched_ms"]
            require(abs(sc["speedup"] - expected) <= 0.01 * expected + 0.01,
                    f"{where}: speedup {sc['speedup']} inconsistent with wall times")
        key = (sc["scheme"], sc["name"])
        require(key not in seen, f"{where}: duplicate scenario")
        seen.add(key)
    schemes = {s for s, _ in seen}
    for scheme in schemes:
        for name in SCENARIO_NAMES:
            require((scheme, name) in seen, f"scheme '{scheme}': missing scenario '{name}'")

    require(isinstance(doc.get("min_speedup_raa"), (int, float)),
            "min_speedup_raa must be a number")
    require(isinstance(doc.get("min_speedup_rta"), (int, float)),
            "min_speedup_rta must be a number")
    require(doc.get("identical") is True, "outcomes were not bit-identical across paths")

    return (f"{len(schemes)} schemes x {len(SCENARIO_NAMES)} scenarios, "
            f"min speedup raa {doc['min_speedup_raa']:.2f}x / "
            f"rta {doc['min_speedup_rta']:.2f}x, identical outcomes")


EPOCH_GRID_NAMES = ("table1_sr2_raa", "fig14_stages")


def validate_perf_epoch(doc: dict) -> str:
    config = doc.get("config")
    require(isinstance(config, dict), "config must be an object")
    require_fields(
        config,
        {
            "scheme_lines": int,
            "scheme_writes": int,
            "grid_lines": int,
            "grid_endurance": int,
            "fig14_lines": int,
            "fig14_endurance": int,
            "seeds": int,
        },
        "config",
    )
    for name in ("scheme_lines", "grid_lines", "fig14_lines"):
        require(config[name] > 0 and config[name] & (config[name] - 1) == 0,
                f"config.{name} must be a positive power of two")

    schemes = doc.get("schemes")
    require(isinstance(schemes, list) and schemes, "schemes must be a non-empty list")
    seen = set()
    for sc in schemes:
        require(isinstance(sc, dict), "scheme entries must be objects")
        require_fields(
            sc,
            {
                "scheme": str,
                "windowed_ms": (int, float),
                "epoch_ms": (int, float),
                "speedup": (int, float),
            },
            f"scheme '{sc.get('scheme', '?')}'",
        )
        where = f"scheme '{sc['scheme']}'"
        require(sc.get("identical") is True, f"{where}: not bit-identical across tiers")
        if sc["epoch_ms"] > 0:
            expected = sc["windowed_ms"] / sc["epoch_ms"]
            require(abs(sc["speedup"] - expected) <= 0.01 * expected + 0.01,
                    f"{where}: speedup {sc['speedup']} inconsistent with wall times")
        require(sc["scheme"] not in seen, f"{where}: duplicate scheme")
        seen.add(sc["scheme"])

    grids = doc.get("grids")
    require(isinstance(grids, list) and len(grids) == len(EPOCH_GRID_NAMES),
            f"grids must list {len(EPOCH_GRID_NAMES)} grids")
    for gr in grids:
        require(isinstance(gr, dict), "grid entries must be objects")
        require_fields(
            gr,
            {
                "name": str,
                "entries": int,
                "windowed_ms": (int, float),
                "epoch_ms": (int, float),
                "speedup": (int, float),
            },
            f"grid '{gr.get('name', '?')}'",
        )
        where = f"grid '{gr['name']}'"
        require(gr["entries"] > 0, f"{where}: entries must be positive")
        require(gr.get("identical") is True, f"{where}: not bit-identical across tiers")
        if gr["epoch_ms"] > 0:
            expected = gr["windowed_ms"] / gr["epoch_ms"]
            require(abs(gr["speedup"] - expected) <= 0.01 * expected + 0.01,
                    f"{where}: speedup {gr['speedup']} inconsistent with wall times")
    require([gr["name"] for gr in grids] == list(EPOCH_GRID_NAMES),
            f"unexpected grid names/order: {[gr['name'] for gr in grids]}")

    require(isinstance(doc.get("composite_speedup"), (int, float)),
            "composite_speedup must be a number")
    total_windowed = sum(gr["windowed_ms"] for gr in grids)
    total_epoch = sum(gr["epoch_ms"] for gr in grids)
    if total_epoch > 0:
        expected = total_windowed / total_epoch
        require(abs(doc["composite_speedup"] - expected) <= 0.01 * expected + 0.01,
                f"composite_speedup {doc['composite_speedup']} inconsistent "
                f"with grid wall times ({expected:.3f})")
    require(isinstance(doc.get("model_rel_err"), (int, float)),
            "model_rel_err must be a number")
    require(doc["model_rel_err"] < 0.10,
            f"model_rel_err {doc['model_rel_err']} exceeds the 10% gate")
    require(doc.get("identical") is True, "outcomes were not bit-identical across tiers")

    return (f"{len(schemes)} schemes + {len(grids)} grids, composite speedup "
            f"{doc['composite_speedup']:.2f}x, model rel err "
            f"{doc['model_rel_err']:.3f}, identical outcomes")


HIST_FIELDS = {
    "count": int,
    "sum": int,
    "min": int,
    "max": int,
    "p50": int,
    "p99": int,
    "p999": int,
}


def validate_perf_stall(doc: dict) -> str:
    config = doc.get("config")
    require(isinstance(config, dict), "config must be an object")
    require_fields(
        config,
        {
            "lines": int,
            "regions": int,
            "inner_interval": int,
            "outer_interval": int,
            "endurance": int,
            "seeds": int,
            "symbols": int,
            "victim_writes": int,
            "probe_writes": int,
        },
        "config",
    )
    require(config["lines"] > 0 and config["lines"] & (config["lines"] - 1) == 0,
            "config.lines must be a positive power of two")
    wps = config["victim_writes"] + config["probe_writes"] + config["inner_interval"]

    schemes = doc.get("schemes")
    require(isinstance(schemes, list) and schemes, "schemes must be a non-empty list")
    seen = set()
    for sc in schemes:
        require(isinstance(sc, dict), "scheme entries must be objects")
        require_fields(
            sc,
            {
                "scheme": str,
                "stages": int,
                "symbols": int,
                "mi_bits_per_symbol": (int, float),
                "capacity_bits_per_write": (int, float),
            },
            f"scheme '{sc.get('scheme', '?')}'",
        )
        where = f"scheme '{sc['scheme']}'"
        require(sc["scheme"] not in seen, f"{where}: duplicate scheme")
        seen.add(sc["scheme"])
        require(sc["symbols"] == config["symbols"] * config["seeds"],
                f"{where}: symbols must equal config.symbols * config.seeds")
        expected = sc["mi_bits_per_symbol"] / wps
        require(abs(sc["capacity_bits_per_write"] - expected) <= 0.01 * expected + 1e-9,
                f"{where}: capacity inconsistent with MI / writes-per-symbol")
        for hist in ("write_ns", "stall_ns"):
            h = sc.get(hist)
            require(isinstance(h, dict), f"{where}: {hist} must be an object")
            require_fields(h, HIST_FIELDS, f"{where}.{hist}")
            require(h["p50"] <= h["p99"] <= h["p999"] <= h["max"],
                    f"{where}.{hist}: quantiles must be non-decreasing")
        require(sc["write_ns"]["count"] > 0, f"{where}: write_ns histogram is empty")

    require(schemes[0]["scheme"] == "rbsg", "schemes[0] must be the rbsg baseline")
    max_stages = max(sc["stages"] for sc in schemes[1:])
    require(schemes[-1]["stages"] == max_stages,
            "schemes[-1] must be security-rbsg at max stages")

    require(isinstance(doc.get("capacity_rbsg"), (int, float)),
            "capacity_rbsg must be a number")
    require(isinstance(doc.get("capacity_srbsg_max_stages"), (int, float)),
            "capacity_srbsg_max_stages must be a number")
    require(doc["capacity_rbsg"] == schemes[0]["capacity_bits_per_write"],
            "capacity_rbsg must repeat schemes[0].capacity_bits_per_write")
    require(doc["capacity_srbsg_max_stages"] == schemes[-1]["capacity_bits_per_write"],
            "capacity_srbsg_max_stages must repeat schemes[-1].capacity_bits_per_write")

    # The paper's claim as an empirical gate: the RBSG remap-timing
    # channel is live, and Security RBSG at max stages suppresses it.
    require(doc["capacity_rbsg"] > 0, "capacity_rbsg must be positive (channel dead?)")
    require(doc["capacity_srbsg_max_stages"] < doc["capacity_rbsg"],
            "security-rbsg capacity must stay below the rbsg baseline")
    require(doc.get("identical") is True,
            "traced runs were not bit-identical to untraced runs")

    suppression = doc["capacity_rbsg"] / max(doc["capacity_srbsg_max_stages"], 1e-12)
    return (f"{len(schemes)} schemes, rbsg channel "
            f"{doc['capacity_rbsg']:.4f} bits/write, suppressed "
            f"{suppression:.1f}x at {max_stages} stages, identical outcomes")


VALIDATORS = {
    "perf_sweep": validate_perf_sweep,
    "perf_write_path": validate_perf_write_path,
    "perf_epoch": validate_perf_epoch,
    "perf_stall": validate_perf_stall,
}


def load_and_validate(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {path}: {exc}")

    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(doc.get("schema_version") == 1, f"{path}: schema_version must be 1")
    require(doc.get("telemetry_schema") in (1, 2),
            f"{path}: telemetry_schema must be 1 or 2 (the JSONL trace layout "
            "the binary links)")
    bench = doc.get("bench")
    require(bench in VALIDATORS,
            f"{path}: bench must be one of {sorted(VALIDATORS)}, got {bench!r}")
    summary = VALIDATORS[bench](doc)
    print(f"check_bench_json: OK: [{bench}] {summary}")
    return doc


def _shape_of(doc: dict) -> dict:
    """The workload description; ratio comparisons only make sense when
    the current run and the reference ran the same workload.  Thread
    count is machine configuration, not workload, so it is excluded."""
    shape = dict(doc["grid"] if doc["bench"] == "perf_sweep" else doc["config"])
    shape.pop("threads", None)
    return shape


def _ratio_metrics(doc: dict) -> dict:
    """Machine-independent ratio metrics (bigger is better)."""
    if doc["bench"] == "perf_sweep":
        return {"speedup": doc["speedup"]}
    if doc["bench"] == "perf_stall":
        # Capacity ratios are machine-independent (simulated time only);
        # the suppression factor is the headline security metric.
        metrics = {
            "rbsg capacity (bits/write)": doc["capacity_rbsg"],
            "suppression ratio": doc["capacity_rbsg"]
            / max(doc["capacity_srbsg_max_stages"], 1e-12),
        }
        for sc in doc["schemes"]:
            metrics[f"{sc['scheme']} MI (bits/symbol)"] = sc["mi_bits_per_symbol"]
        return metrics
    if doc["bench"] == "perf_epoch":
        metrics = {"composite_speedup": doc["composite_speedup"]}
        for sc in doc["schemes"]:
            metrics[f"{sc['scheme']} speedup"] = sc["speedup"]
        for gr in doc["grids"]:
            metrics[f"{gr['name']} speedup"] = gr["speedup"]
        return metrics
    metrics = {
        "min_speedup_raa": doc["min_speedup_raa"],
        "min_speedup_rta": doc["min_speedup_rta"],
    }
    for sc in doc["scenarios"]:
        metrics[f"{sc['scheme']}/{sc['name']} speedup"] = sc["speedup"]
    return metrics


def compare(doc: dict, ref: dict, ref_path: str, threshold: float) -> int:
    """Warns (stderr) for each ratio metric > threshold below the
    reference; returns the warning count."""
    require(doc["bench"] == ref["bench"],
            f"--compare: bench mismatch ({doc['bench']} vs {ref['bench']})")
    if _shape_of(doc) != _shape_of(ref):
        print(f"check_bench_json: NOTE: {ref_path} ran a different "
              "grid/config — ratio comparison skipped", file=sys.stderr)
        return 0
    current, reference = _ratio_metrics(doc), _ratio_metrics(ref)
    warnings = 0
    for name in sorted(reference):
        if name not in current or reference[name] <= 0:
            continue
        drop = (reference[name] - current[name]) / reference[name]
        if drop > threshold:
            print(f"check_bench_json: WARNING: {name} regressed "
                  f"{drop:.0%} vs {ref_path} "
                  f"({current[name]:.2f} vs {reference[name]:.2f})",
                  file=sys.stderr)
            warnings += 1
    if warnings:
        print(f"check_bench_json: WARNING: {warnings} ratio metric(s) more "
              f"than {threshold:.0%} below the reference", file=sys.stderr)
    else:
        print(f"check_bench_json: OK: no ratio metric more than "
              f"{threshold:.0%} below {ref_path}")
    return warnings


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="bench JSON to validate")
    parser.add_argument("--compare", metavar="REF.json", default=None,
                        help="committed reference run to compare ratio "
                             "metrics against (warnings only)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression that triggers a warning "
                             "(default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="with --compare: exit 1 when any ratio metric "
                             "regresses past the threshold")
    args = parser.parse_args()

    doc = load_and_validate(args.bench_json)
    if args.compare:
        ref = load_and_validate(args.compare)
        warnings = compare(doc, ref, args.compare, args.threshold)
        if args.strict and warnings:
            print(f"check_bench_json: FAIL (--strict): {warnings} ratio "
                  "regression(s)", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
