#!/usr/bin/env python3
"""Validate a BENCH_sweep.json emitted by bench/perf_sweep.

Checks the schema (schema_version 1), field types, and internal
consistency (per-engine counters present, speedup = v1/v2 wall within
tolerance, outcomes marked identical). Absolute timing numbers are NOT
gated — CI machines vary — but a malformed file or a determinism failure
exits nonzero.

Usage: check_bench_json.py BENCH_sweep.json
"""

from __future__ import annotations

import json
import sys


def fail(msg: str) -> "NoReturn":  # noqa: F821 - py3.8-compatible annotation
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def require_fields(obj: dict, spec: dict, where: str) -> None:
    for name, types in spec.items():
        require(name in obj, f"{where}: missing field '{name}'")
        value = obj[name]
        require(
            not isinstance(value, bool) and isinstance(value, types),
            f"{where}: field '{name}' has type {type(value).__name__}",
        )


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {sys.argv[1]}: {exc}")

    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("schema_version") == 1, "schema_version must be 1")
    require(doc.get("bench") == "perf_sweep", "bench must be 'perf_sweep'")

    grid = doc.get("grid")
    require(isinstance(grid, dict), "grid must be an object")
    require_fields(
        grid,
        {
            "entries": int,
            "lines": int,
            "endurance": int,
            "endurance_variation": (int, float),
            "seeds": int,
            "threads": int,
        },
        "grid",
    )
    require(grid["entries"] > 0, "grid.entries must be positive")
    require(grid["lines"] > 0 and grid["lines"] & (grid["lines"] - 1) == 0,
            "grid.lines must be a positive power of two")

    engines = doc.get("engines")
    require(isinstance(engines, list) and len(engines) == 2, "engines must list two engines")
    names = []
    for engine in engines:
        require(isinstance(engine, dict), "engine entries must be objects")
        require_fields(
            engine,
            {
                "name": str,
                "wall_ms": (int, float),
                "writes": int,
                "writes_per_sec": (int, float),
                "alloc_calls": int,
                "alloc_bytes": int,
                "peak_rss_kb": int,
            },
            f"engine '{engine.get('name', '?')}'",
        )
        require(engine["wall_ms"] > 0, f"engine '{engine['name']}': wall_ms must be positive")
        names.append(engine["name"])
    require(names == ["v1_per_entry_fresh_banks", "v2_arena_chunked"],
            f"unexpected engine names/order: {names}")
    v1, v2 = engines
    require("bank_builds" in v2 and "bank_reuses" in v2,
            "v2 engine must report bank_builds/bank_reuses")
    require(v1["writes"] == v2["writes"],
            f"engines simulated different write counts: {v1['writes']} vs {v2['writes']}")

    require(isinstance(doc.get("speedup"), (int, float)), "speedup must be a number")
    expected = v1["wall_ms"] / v2["wall_ms"]
    require(abs(doc["speedup"] - expected) <= 0.01 * expected + 0.01,
            f"speedup {doc['speedup']} inconsistent with wall times ({expected:.3f})")

    require(doc.get("identical") is True, "outcomes were not bit-identical across engines")

    print(f"check_bench_json: OK: {grid['entries']} entries, "
          f"speedup {doc['speedup']:.2f}x, identical outcomes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
