#!/usr/bin/env python3
"""Repo-specific lint rules the simulator's correctness story depends on.

Rules (enforced over src/ only; tests and benches are exempt):
  R1  no libc/std randomness or wall-clock sources — every stochastic
      component must take an explicit seed (rand/srand, std::random_device,
      time(...), <ctime>/<cstdlib> randomness are all banned).  R1 is
      owned by tools/analyze (check a2-determinism) and is OFF by
      default here; the analyzer reuses these patterns as its regex
      pre-pass, so each violation is reported exactly once.  Select it
      explicitly with --rules R1,... to run standalone.
  R2  no bare assert() — invariants use srbsg::check / SRBSG_CHECK /
      check_eq & friends, which stay armed in release builds and throw a
      diagnosable CheckFailure instead of aborting;
  R3  include hygiene — headers open with #pragma once, quoted includes
      are src/-relative (no "../" escapes) and must resolve, angle
      brackets are reserved for system/third-party headers, and <bits/...>
      internals are banned;
  R4  no `using namespace std` at any scope.

Inline `// srbsg-analyze: suppress(<rule|check>, ...)` comments silence a
finding on the same line or the line below, exactly like the analyzer's
suppression syntax (`a2-determinism` is accepted as an alias for R1).

Exit status 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

# (rule, regex, message). Patterns are matched per line after comment
# stripping, so prose in comments can mention rand()/time() freely.
BANNED_PATTERNS = [
    ("R1", re.compile(r"\b(?:std::)?s?rand\s*\("),
     "rand()/srand() banned: use srbsg::Rng with an explicit seed"),
    ("R1", re.compile(r"\bstd::random_device\b"),
     "std::random_device banned: seeds must be explicit and reproducible"),
    ("R1", re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0|\))"),
     "time() banned: simulated time only; seeds must be explicit"),
    ("R1", re.compile(r"#\s*include\s*<ctime>"),
     "<ctime> banned: no wall-clock sources in the simulator"),
    ("R2", re.compile(r"(?<![\w.:])assert\s*\("),
     "bare assert() banned: use srbsg::check / SRBSG_CHECK / check_eq family"),
    ("R2", re.compile(r"#\s*include\s*<(?:cassert|assert\.h)>"),
     "<cassert> banned: use common/check.hpp"),
    ("R3", re.compile(r"#\s*include\s*\"\.\./"),
     'relative "../" include banned: includes are src/-relative'),
    ("R3", re.compile(r"#\s*include\s*<bits/"),
     "<bits/...> internals banned: include the standard header"),
    ("R4", re.compile(r"\busing\s+namespace\s+std\s*;"),
     "`using namespace std` banned"),
]

QUOTED_INCLUDE = re.compile(r"#\s*include\s*\"([^\"]+)\"")
LINE_COMMENT = re.compile(r"//.*$")

# The analyzer's inline suppression syntax is honored here too, so one
# comment silences the same violation under both tools.  Tokens are the
# lint rule ids (r1-r4) or analyzer check ids; `a2-determinism` is the
# analyzer's name for R1.
SUPPRESS_RE = re.compile(r"srbsg-analyze:\s*suppress\(([a-z0-9,\s-]+)\)")
_TOKEN_TO_RULE = {"r1": "R1", "r2": "R2", "r3": "R3", "r4": "R4",
                  "a2-determinism": "R1"}

ALL_RULES = frozenset({"R1", "R2", "R3", "R4"})
# R1 is reported by tools/analyze (a2-determinism pre-pass + AST check).
DEFAULT_RULES = frozenset({"R2", "R3", "R4"})


def strip_comments(text: str) -> list[str]:
    """Returns the file's lines with comment text blanked (newlines kept so
    line numbers stay stable)."""
    # Blank /* ... */ ranges first, preserving newlines.
    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    return [LINE_COMMENT.sub("", line) for line in text.splitlines()]


def suppressed_rules(text: str) -> dict[int, set[str]]:
    """{line number: lint rules silenced there} from inline
    `srbsg-analyze: suppress(...)` comments.  Parsed over the raw text
    (the markers live inside comments, which strip_comments blanks); a
    marker covers its own line and, like the analyzer, the line below
    it when it stands alone above the violation."""
    by_line: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in SUPPRESS_RE.finditer(line):
            rules = {_TOKEN_TO_RULE[token.strip()]
                     for token in match.group(1).split(",")
                     if token.strip() in _TOKEN_TO_RULE}
            if not rules:
                continue
            by_line.setdefault(lineno, set()).update(rules)
            by_line.setdefault(lineno + 1, set()).update(rules)
    return by_line


def first_code_line(lines: list[str]) -> str:
    for line in lines:
        if line.strip():
            return line.strip()
    return ""


def lint_file(path: Path, rules: frozenset[str] = DEFAULT_RULES) -> list[str]:
    findings = []
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:  # outside the repo (tests lint temp files)
        rel = path
    text = path.read_text(encoding="utf-8")
    suppressed = suppressed_rules(text)
    lines = strip_comments(text)

    def blocked(lineno: int, rule: str) -> bool:
        return rule in suppressed.get(lineno, ())

    if "R3" in rules and path.suffix == ".hpp" \
            and first_code_line(lines) != "#pragma once" \
            and not blocked(1, "R3"):
        findings.append(f"{rel}:1: R3: header must open with #pragma once")

    for lineno, line in enumerate(lines, start=1):
        for rule, pattern, message in BANNED_PATTERNS:
            if rule in rules and pattern.search(line) \
                    and not blocked(lineno, rule):
                findings.append(f"{rel}:{lineno}: {rule}: {message}")
        if "R3" in rules and not blocked(lineno, "R3"):
            for match in QUOTED_INCLUDE.finditer(line):
                target = match.group(1)
                if not (SRC_ROOT / target).is_file():
                    findings.append(
                        f"{rel}:{lineno}: R3: quoted include \"{target}\" does "
                        "not resolve src/-relative (system headers use <...>)")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rules", default=",".join(sorted(DEFAULT_RULES)),
        help="comma-separated rules to enforce (default: %(default)s; "
             "R1 lives in tools/analyze as check a2-determinism)")
    args = parser.parse_args()
    rules = frozenset(r.strip().upper() for r in args.rules.split(",")
                      if r.strip())
    unknown = rules - ALL_RULES
    if unknown:
        print(f"lint.py: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    files = sorted(p for p in SRC_ROOT.rglob("*") if p.suffix in (".hpp", ".cpp"))
    if not files:
        print("lint.py: no sources found under src/", file=sys.stderr)
        return 1
    findings = []
    for path in files:
        findings.extend(lint_file(path, rules))
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} files", file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
