#!/usr/bin/env python3
"""Unit tests for tools/lint.py, run under ctest (label: static).

Covers the inline `srbsg-analyze: suppress(...)` comment support (same
line, preceding line, the a2-determinism alias for R1, non-matching
tokens) plus the temp-file path fallback and the baseline rule
behavior the suppressions sit on.  Exit status 0 pass, 1 fail.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint  # noqa: E402

_failures: list[str] = []


def fail(message: str) -> None:
    _failures.append(message)
    print(f"FAIL: {message}")


def check(label: str, got: list[str], want_rules: list[str]) -> None:
    got_rules = [f.split(": ")[1] for f in got]
    if got_rules != want_rules:
        fail(f"{label}: expected rules {want_rules}, got {got}")
    else:
        print(f"ok: {label} ({len(got)} finding(s))")


def lint_text(text: str, rules: frozenset[str],
              suffix: str = ".cpp") -> list[str]:
    with tempfile.NamedTemporaryFile("w", suffix=suffix, delete=False,
                                     encoding="utf-8") as fh:
        fh.write(text)
        path = Path(fh.name)
    try:
        return lint.lint_file(path, rules)
    finally:
        path.unlink()


def main() -> int:
    r2 = frozenset({"R2"})

    check("unsuppressed assert is reported",
          lint_text("void f() { assert(1); }\n", r2), ["R2"])

    check("same-line suppression",
          lint_text("void f() { assert(1); }"
                    "  // srbsg-analyze: suppress(r2) third-party macro\n",
                    r2), [])

    check("preceding-line suppression",
          lint_text("// srbsg-analyze: suppress(r2) third-party macro\n"
                    "void f() { assert(1); }\n", r2), [])

    check("suppression does not leak past the next line",
          lint_text("// srbsg-analyze: suppress(r2)\n"
                    "void f() {}\n"
                    "void g() { assert(1); }\n", r2), ["R2"])

    check("non-matching token does not suppress",
          lint_text("void f() { assert(1); }"
                    "  // srbsg-analyze: suppress(r3)\n", r2), ["R2"])

    check("a2-determinism aliases R1",
          lint_text("// srbsg-analyze: suppress(a2-determinism) fixture\n"
                    "int s = rand();\n", frozenset({"R1"})), [])

    check("multi-token list suppresses each named rule",
          lint_text("int s = rand();  "
                    "// srbsg-analyze: suppress(r1, r2) seeded fixture\n"
                    "void f() { assert(1); }\n", frozenset({"R1", "R2"})),
          [])

    check("pragma-once finding can be suppressed",
          lint_text("// srbsg-analyze: suppress(r3) generated header\n"
                    "int x;\n", frozenset({"R3"}), suffix=".hpp"), [])

    # Temp files live outside the repo: lint_file must not throw on
    # relative_to and findings keep the absolute path.
    got = lint_text("void f() { assert(1); }\n", r2)
    if got and not os.path.isabs(got[0].split(":")[0]):
        fail(f"out-of-repo finding lost its path: {got[0]}")
    else:
        print("ok: out-of-repo files lint without a path error")

    # The analyzer's pre-pass imports these names; keep them stable.
    for name in ("BANNED_PATTERNS", "strip_comments"):
        if not hasattr(lint, name):
            fail(f"lint.py no longer exports {name} (pre-pass contract)")
    print("ok: pre-pass import contract (BANNED_PATTERNS, strip_comments)")

    return 1 if _failures else 0


if __name__ == "__main__":
    sys.exit(main())
