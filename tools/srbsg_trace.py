#!/usr/bin/env python3
"""Inspect, validate and export srbsg telemetry JSONL traces.

Reads both telemetry_schema 1 (events + wear snapshots + counters) and
telemetry_schema 2 (adds span events, stall/write latency histograms
and decoded span/reason names). Subcommands (a leading ``--`` is
accepted, so ``srbsg-trace --validate`` and ``srbsg-trace validate``
are the same):

  validate FILE [--expect EV[,EV...]]
      Structural checks: header first with a known telemetry_schema,
      known record/event types, per-run seq monotonicity, run
      bookkeeping (retained/dropped vs emitted event lines), and the
      attribution invariant — every GapMoved / KeyRerandomized must
      follow a RemapTriggered from the same run and scheme at the same
      sim instant. Schema 2 additionally pairs SpanBegin/SpanEnd per
      (run, scheme, span kind) and cross-checks histogram records. A
      span cut by ring overflow (run.dropped > 0) is reported as
      truncated, not an error; an unbalanced span in a run that dropped
      nothing is an error. Events at the ring's truncation boundary
      (oldest retained timestamp of a run that dropped events) are
      exempt from attribution: their trigger may have been dropped.
      --expect additionally requires at least one event of each listed
      type somewhere in the trace.

  timeline FILE [--entry N] [--limit N]
      Human-readable event listing (default: all entries, first 40
      events each).

  cadence FILE
      Remap-cadence statistics per run: distinct remap instants, mean /
      min / max gap between them, rekey and gap-move counts.

  forensics FILE
      Attack-forensics view: correlates the RTA probe's classified-bit
      stream with the defender's remap / re-key / detector timeline in
      the window the probe was active.

  export FILE [--chrome OUT] [--prom OUT]
      --chrome writes Chrome trace-event JSON (loadable in Perfetto /
      chrome://tracing): one process per run, one track per span kind,
      instant markers for point events. --prom writes a Prometheus
      text-format snapshot of the merged counters and latency
      histograms. OUT of ``-`` writes to stdout.

  channel FILE [--json]
      Replays the ChannelSymbol span stream as a binary channel and
      reports the empirical capacity per run: plug-in mutual
      information I(bit; observed stalls) in bits per symbol and per
      write. This is the trace-side cross-check of bench/perf_stall's
      in-process estimate.

Exit status: 0 on success, 1 on validation failure, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from collections import Counter

SCHEMA_VERSIONS = (1, 2)

EVENT_TYPES = (
    "RemapTriggered",
    "GapMoved",
    "KeyRerandomized",
    "DetectorStateChange",
    "LineFailed",
    "BatchChunkApplied",
    "ProbeClassified",
    "EpochApplied",
    "SpanBegin",
    "SpanEnd",
)

# Event types only a schema-2 writer emits.
SCHEMA2_EVENT_TYPES = ("SpanBegin", "SpanEnd")

RECORD_TYPES = ("header", "run", "event", "wear_snapshot", "counters",
                "counters_merged", "hist", "hist_merged")

# Record types only a schema-2 writer emits.
SCHEMA2_RECORD_TYPES = ("hist", "hist_merged")

SPAN_KINDS = ("RemapEpoch", "BatchChunk", "EpochProjection",
              "ExactReplayFallback", "DetectorEval", "ChannelSymbol")

FALLBACK_REASONS = ("None", "NearFailure", "PsiChange", "NonUniformContent",
                    "NonPeriodicPattern", "CacheMiss")

HIST_NAMES = ("write_ns", "stall_ns")

ATTRIBUTED = ("GapMoved", "KeyRerandomized")


class TraceError(Exception):
    """A malformed or invariant-violating trace."""


def load(path: str) -> list[dict]:
    records = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(f"line {lineno}: not JSON: {exc}") from exc
                if not isinstance(rec, dict) or "type" not in rec:
                    raise TraceError(f"line {lineno}: record without a 'type'")
                rec["_line"] = lineno
                records.append(rec)
    except OSError as exc:
        raise TraceError(f"cannot read {path}: {exc}") from exc
    if not records:
        raise TraceError("empty trace")
    return records


def events_of(records: list[dict]) -> list[dict]:
    return [r for r in records if r["type"] == "event"]


def runs_of(records: list[dict]) -> dict[int, dict]:
    return {r["entry"]: r for r in records if r["type"] == "run"}


def schema_of(records: list[dict]) -> int:
    header = records[0]
    if header["type"] != "header":
        raise TraceError("first record must be the header")
    schema = header.get("telemetry_schema")
    if schema not in SCHEMA_VERSIONS:
        raise TraceError(
            f"telemetry_schema must be one of {SCHEMA_VERSIONS}, got {schema!r}")
    return schema


def bucket_lo(idx: int) -> int:
    """Lower bound of LogHistogram bucket `idx` (mirrors histogram.cpp)."""
    if idx < 8:
        return idx
    octave, sub = idx >> 3, idx & 7
    return (8 | sub) << (octave - 1)


def _validate_spans(entry: int, evs: list[dict], dropped: int) -> tuple[int, int]:
    """Pair SpanBegin/SpanEnd per (scheme, kind); returns (spans, truncated).

    An unmatched end (or a begin left open at run end) is only legal
    when the ring dropped events — the partner may be among them.
    """
    open_spans: Counter = Counter()
    spans = 0
    truncated = 0
    for ev in evs:
        if ev["ev"] not in ("SpanBegin", "SpanEnd"):
            continue
        kind = ev.get("span")
        if kind not in SPAN_KINDS:
            raise TraceError(f"line {ev['_line']}: unknown span kind {kind!r}")
        if kind == "ExactReplayFallback":
            if ev.get("reason") not in FALLBACK_REASONS:
                raise TraceError(
                    f"line {ev['_line']}: fallback span with bad reason "
                    f"{ev.get('reason')!r}")
        key = (ev["scheme"], kind)
        if ev["ev"] == "SpanBegin":
            open_spans[key] += 1
            spans += 1
        else:
            if open_spans[key] > 0:
                open_spans[key] -= 1
            elif dropped > 0:
                truncated += 1  # begin fell off the ring
            else:
                raise TraceError(
                    f"line {ev['_line']}: SpanEnd({kind}) without a begin in "
                    f"entry {entry} (and the run dropped nothing)")
    leftover = sum(open_spans.values())
    if leftover > 0 and dropped == 0:
        raise TraceError(
            f"entry {entry}: {leftover} span(s) never ended "
            f"(and the run dropped nothing)")
    return spans, truncated + leftover


def _validate_hists(records: list[dict], runs: dict[int, dict]) -> int:
    """Check per-run and merged histogram records; returns hist count."""
    per_run: dict[str, int] = {name: 0 for name in HIST_NAMES}
    seen: set[tuple[int, str]] = set()
    merged: dict[str, dict] = {}
    for rec in records:
        if rec["type"] not in ("hist", "hist_merged"):
            continue
        name = rec.get("name")
        if name not in HIST_NAMES:
            raise TraceError(f"line {rec['_line']}: unknown histogram {name!r}")
        total = sum(c for _, _, c in rec.get("buckets", []))
        if total != rec.get("count"):
            raise TraceError(
                f"line {rec['_line']}: histogram buckets sum to {total}, "
                f"count says {rec.get('count')}")
        for idx, lo, _ in rec.get("buckets", []):
            if lo != bucket_lo(idx):
                raise TraceError(
                    f"line {rec['_line']}: bucket {idx} claims lower bound {lo}, "
                    f"expected {bucket_lo(idx)}")
        if rec["type"] == "hist":
            if rec.get("entry") not in runs:
                raise TraceError(
                    f"line {rec['_line']}: histogram for entry {rec.get('entry')} "
                    f"with no run")
            key = (rec["entry"], name)
            if key in seen:
                raise TraceError(
                    f"line {rec['_line']}: duplicate {name} histogram for "
                    f"entry {rec['entry']}")
            seen.add(key)
            per_run[name] += rec["count"]
        else:
            merged[name] = rec
    for name in HIST_NAMES:
        if name not in merged:
            raise TraceError(f"schema 2 trace is missing the merged {name} histogram")
        if merged[name]["count"] != per_run[name]:
            raise TraceError(
                f"merged {name} histogram counts {merged[name]['count']} samples, "
                f"per-run histograms sum to {per_run[name]}")
    return len(seen) + len(merged)


def validate(records: list[dict], expect: list[str]) -> str:
    schema = schema_of(records)
    header = records[0]
    for rec in records:
        if rec["type"] not in RECORD_TYPES:
            raise TraceError(f"line {rec['_line']}: unknown record type {rec['type']!r}")
        if schema == 1 and rec["type"] in SCHEMA2_RECORD_TYPES:
            raise TraceError(
                f"line {rec['_line']}: schema 1 trace contains a schema 2 "
                f"record ({rec['type']})")

    runs = runs_of(records)
    events = events_of(records)
    if header.get("runs") != len(runs):
        raise TraceError(f"header claims {header.get('runs')} runs, trace has {len(runs)}")
    total_pushed = sum(r["events"] for r in runs.values())
    if header.get("events") != total_pushed:
        raise TraceError(
            f"header claims {header.get('events')} events, runs sum to {total_pushed}")

    # Per-run: seq strictly increasing, counts consistent with the run
    # record, attribution of moves/rekeys to a same-instant trigger.
    by_entry: dict[int, list[dict]] = {}
    for ev in events:
        if ev["ev"] not in EVENT_TYPES:
            raise TraceError(f"line {ev['_line']}: unknown event type {ev['ev']!r}")
        if schema == 1 and ev["ev"] in SCHEMA2_EVENT_TYPES:
            raise TraceError(
                f"line {ev['_line']}: schema 1 trace contains a schema 2 "
                f"event ({ev['ev']})")
        if ev["entry"] not in runs:
            raise TraceError(f"line {ev['_line']}: event for entry {ev['entry']} with no run")
        by_entry.setdefault(ev["entry"], []).append(ev)

    spans = 0
    truncated = 0
    for entry, evs in sorted(by_entry.items()):
        run = runs[entry]
        if len(evs) != run["retained"]:
            raise TraceError(
                f"entry {entry}: {len(evs)} event lines but run.retained={run['retained']}")
        if run["retained"] + run["dropped"] != run["events"]:
            raise TraceError(
                f"entry {entry}: retained+dropped != events in the run record")
        prev_seq = None
        prev_t = None
        # Oldest retained instant: attribution is unprovable there when
        # the ring dropped events (the trigger may be among them).
        boundary_t = evs[0]["t"] if run["dropped"] > 0 else None
        last_trigger: dict[str, int] = {}
        for ev in evs:
            if prev_seq is not None and ev["seq"] <= prev_seq:
                raise TraceError(
                    f"line {ev['_line']}: seq not strictly increasing in entry {entry}")
            if prev_t is not None and ev["t"] < prev_t:
                raise TraceError(
                    f"line {ev['_line']}: timestamps regress in entry {entry}")
            prev_seq, prev_t = ev["seq"], ev["t"]
            if ev["ev"] == "RemapTriggered":
                last_trigger[ev["scheme"]] = ev["t"]
            elif ev["ev"] in ATTRIBUTED:
                if ev["t"] == boundary_t:
                    continue
                if last_trigger.get(ev["scheme"]) != ev["t"]:
                    raise TraceError(
                        f"line {ev['_line']}: {ev['ev']} at t={ev['t']} (entry {entry}, "
                        f"scheme {ev['scheme']}) has no RemapTriggered at the same instant")
        if schema >= 2:
            s, trunc = _validate_spans(entry, evs, run["dropped"])
            spans += s
            truncated += trunc

    hists = _validate_hists(records, runs) if schema >= 2 else 0

    for want in expect:
        if want not in EVENT_TYPES:
            raise TraceError(f"--expect {want}: not an event type (known: {EVENT_TYPES})")
        if not any(ev["ev"] == want for ev in events):
            raise TraceError(f"--expect {want}: no such event in the trace")

    attributed = sum(1 for ev in events if ev["ev"] in ATTRIBUTED)
    msg = (f"{len(runs)} runs, {len(events)} retained events "
           f"({attributed} moves/rekeys attributed), schema {schema}")
    if schema >= 2:
        msg += f", {spans} spans ({truncated} truncated), {hists} histograms"
    return msg


def timeline(records: list[dict], entry: int | None, limit: int) -> None:
    runs = runs_of(records)
    for ent in sorted(runs):
        if entry is not None and ent != entry:
            continue
        run = runs[ent]
        print(f"== entry {ent}: scheme={run['scheme']} attack={run['attack']} "
              f"seed={run['seed']} events={run['events']} dropped={run['dropped']}")
        shown = 0
        for ev in events_of(records):
            if ev["entry"] != ent:
                continue
            if shown >= limit:
                print(f"   ... ({run['retained'] - shown} more)")
                break
            dom = "global" if ev["domain"] == -1 else str(ev["domain"])
            tag = ev["ev"]
            if "span" in ev:
                tag = f"{tag}:{ev['span']}"
                if "reason" in ev and ev["reason"] != "None":
                    tag = f"{tag}({ev['reason']})"
            print(f"   t={ev['t']:>14} seq={ev['seq']:>8} {tag:<34} "
                  f"dom={dom:<7} a={ev['a']} b={ev['b']}")
            shown += 1


def cadence(records: list[dict]) -> None:
    runs = runs_of(records)
    for ent in sorted(runs):
        run = runs[ent]
        instants = sorted({ev["t"] for ev in events_of(records)
                           if ev["entry"] == ent and ev["ev"] == "RemapTriggered"})
        moves = sum(1 for ev in events_of(records)
                    if ev["entry"] == ent and ev["ev"] == "GapMoved")
        rekeys = sum(1 for ev in events_of(records)
                     if ev["entry"] == ent and ev["ev"] == "KeyRerandomized")
        gaps = [b - a for a, b in zip(instants, instants[1:])]
        mean = sum(gaps) / len(gaps) if gaps else 0.0
        print(f"entry {ent} ({run['scheme']} vs {run['attack']}): "
              f"{len(instants)} remap instants, {moves} moves, {rekeys} rekeys")
        if gaps:
            print(f"   gap between remap instants: mean {mean:.0f} ns, "
                  f"min {min(gaps)} ns, max {max(gaps)} ns")


def forensics(records: list[dict]) -> None:
    runs = runs_of(records)
    for ent in sorted(runs):
        run = runs[ent]
        evs = [ev for ev in events_of(records) if ev["entry"] == ent]
        probes = [ev for ev in evs if ev["ev"] == "ProbeClassified"]
        print(f"== entry {ent}: {run['scheme']} vs {run['attack']} (seed {run['seed']})")
        if not probes:
            print("   no ProbeClassified events (probe phase not retained or not run)")
            continue
        t0, t1 = probes[0]["t"], probes[-1]["t"]
        ones = sum(ev["a"] for ev in probes)
        bias = ones / len(probes)
        in_window = [ev for ev in evs if t0 <= ev["t"] <= t1]
        rekeys = sum(1 for ev in in_window if ev["ev"] == "KeyRerandomized")
        remaps = sum(1 for ev in in_window if ev["ev"] == "RemapTriggered")
        boosts = [ev for ev in in_window if ev["ev"] == "DetectorStateChange"]
        print(f"   probe window: t=[{t0}, {t1}] ns, {len(probes)} classified bits, "
              f"bias {bias:.3f}")
        print(f"   defender in window: {remaps} remap triggers, {rekeys} re-keys, "
              f"{len(boosts)} detector changes")
        if rekeys:
            per = len(probes) / rekeys
            print(f"   -> {per:.1f} harvested bits per re-key; each re-key voids the "
                  f"bits before it (paper §IV.B)")
        for ev in evs:
            if ev["ev"] == "LineFailed":
                print(f"   line failed: PA {ev['a']} at t={ev['t']} ns "
                      f"after {ev['b']} writes")


def export_chrome(records: list[dict]) -> dict:
    """Chrome trace-event JSON: a process per run, a track per span kind."""
    runs = runs_of(records)
    out: list[dict] = []
    # Track (tid) layout inside each run's process: spans first, then
    # one instant track for point events.
    span_tid = {kind: i + 1 for i, kind in enumerate(SPAN_KINDS)}
    marker_tid = len(SPAN_KINDS) + 1
    for ent in sorted(runs):
        run = runs[ent]
        out.append({"ph": "M", "name": "process_name", "pid": ent, "tid": 0,
                    "args": {"name": f"entry {ent}: {run['scheme']} vs "
                                     f"{run['attack']} seed={run['seed']}"}})
        for kind, tid in span_tid.items():
            out.append({"ph": "M", "name": "thread_name", "pid": ent, "tid": tid,
                        "args": {"name": kind}})
        out.append({"ph": "M", "name": "thread_name", "pid": ent, "tid": marker_tid,
                    "args": {"name": "events"}})
    open_spans: dict[tuple, list[dict]] = {}
    for ev in events_of(records):
        ts = ev["t"] / 1000.0  # trace-event ts is in microseconds
        if ev["ev"] == "SpanBegin":
            open_spans.setdefault((ev["entry"], ev["scheme"], ev["span"]), []).append(ev)
        elif ev["ev"] == "SpanEnd":
            stack = open_spans.get((ev["entry"], ev["scheme"], ev["span"]), [])
            if not stack:
                out.append({"ph": "i", "s": "t", "name": f"{ev['span']} (truncated)",
                            "cat": "span", "pid": ev["entry"],
                            "tid": span_tid[ev["span"]], "ts": ts})
                continue
            begin = stack.pop()
            args = {"scheme": ev["scheme"], "begin_detail": begin["b"],
                    "end_detail": ev["b"]}
            if "reason" in begin:
                args["reason"] = begin["reason"]
            out.append({"ph": "X", "name": ev["span"], "cat": "span",
                        "pid": ev["entry"], "tid": span_tid[ev["span"]],
                        "ts": begin["t"] / 1000.0,
                        "dur": (ev["t"] - begin["t"]) / 1000.0, "args": args})
        else:
            out.append({"ph": "i", "s": "t", "name": ev["ev"], "cat": "event",
                        "pid": ev["entry"], "tid": marker_tid, "ts": ts,
                        "args": {"scheme": ev["scheme"], "domain": ev["domain"],
                                 "a": ev["a"], "b": ev["b"]}})
    # Spans cut by ring overflow: surface the dangling begins as instants.
    for (ent, scheme, kind), stack in open_spans.items():
        for begin in stack:
            out.append({"ph": "i", "s": "t", "name": f"{kind} (truncated)",
                        "cat": "span", "pid": ent, "tid": span_tid[kind],
                        "ts": begin["t"] / 1000.0, "args": {"scheme": scheme}})
    return {"traceEvents": out, "displayTimeUnit": "ns"}


def export_prom(records: list[dict]) -> str:
    """Prometheus text-format snapshot of merged counters + histograms."""
    lines: list[str] = []
    merged = next((r for r in records if r["type"] == "counters_merged"), None)
    if merged is not None:
        lines.append("# HELP srbsg_counter Merged telemetry counter (all runs).")
        lines.append("# TYPE srbsg_counter gauge")
        for name in sorted(merged.get("counters", {})):
            lines.append(f'srbsg_counter{{name="{name}"}} {merged["counters"][name]}')
    for rec in records:
        if rec["type"] != "hist_merged":
            continue
        metric = f"srbsg_{rec['name']}"
        lines.append(f"# HELP {metric} Merged per-write latency histogram (ns).")
        lines.append(f"# TYPE {metric} histogram")
        cum = 0
        for idx, _, count in rec.get("buckets", []):
            cum += count
            # Bucket idx holds values in [lo(idx), lo(idx+1)); the
            # inclusive Prometheus upper bound is lo(idx+1)-1.
            lines.append(f'{metric}_bucket{{le="{bucket_lo(idx + 1) - 1}"}} {cum}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {rec["count"]}')
        lines.append(f"{metric}_sum {rec['sum']}")
        lines.append(f"{metric}_count {rec['count']}")
    return "\n".join(lines) + "\n"


def mutual_information(pairs: list[tuple[int, int]]) -> float:
    """Plug-in MI (bits) between the two coordinates of `pairs`."""
    n = len(pairs)
    if n == 0:
        return 0.0
    pxy = Counter(pairs)
    px = Counter(x for x, _ in pairs)
    py = Counter(y for _, y in pairs)
    mi = 0.0
    for (x, y), c in pxy.items():
        mi += (c / n) * math.log2((c * n) / (px[x] * py[y]))
    return max(mi, 0.0)


def channel(records: list[dict], as_json: bool) -> None:
    """Empirical capacity of the stall side channel, per run."""
    if schema_of(records) < 2:
        raise TraceError("channel analysis needs a schema 2 trace with ChannelSymbol spans")
    runs = runs_of(records)
    results = []
    for ent in sorted(runs):
        run = runs[ent]
        pairs: list[tuple[int, int]] = []
        wps = 0
        begin = None
        for ev in events_of(records):
            if ev["entry"] != ent or ev.get("span") != "ChannelSymbol":
                continue
            if ev["ev"] == "SpanBegin":
                begin = ev
            elif begin is not None:
                # begin.b packs (writes_per_symbol << 1) | bit; end.b is
                # the observed stall count for the symbol.
                pairs.append((begin["b"] & 1, ev["b"]))
                wps = begin["b"] >> 1
                begin = None
        if not pairs:
            continue
        mi = mutual_information(pairs)
        results.append({
            "entry": ent,
            "scheme": run["scheme"],
            "symbols": len(pairs),
            "writes_per_symbol": wps,
            "mi_bits_per_symbol": mi,
            "capacity_bits_per_write": mi / wps if wps else 0.0,
        })
    if as_json:
        print(json.dumps(results, indent=2))
        return
    if not results:
        print("no ChannelSymbol spans in the trace")
        return
    for r in results:
        print(f"entry {r['entry']} ({r['scheme']}): {r['symbols']} symbols, "
              f"MI {r['mi_bits_per_symbol']:.4f} bits/symbol, "
              f"{r['writes_per_symbol']} writes/symbol -> "
              f"capacity {r['capacity_bits_per_write']:.6f} bits/write")


def _write_out(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


def main(argv: list[str]) -> int:
    if argv and argv[0].startswith("--") and argv[0] != "--help":
        argv = [argv[0].lstrip("-")] + argv[1:]
    parser = argparse.ArgumentParser(prog="srbsg-trace", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_val = sub.add_parser("validate", help="structural + attribution + span checks")
    p_val.add_argument("file")
    p_val.add_argument("--expect", default="",
                       help="comma-separated event types that must be present")
    p_tl = sub.add_parser("timeline", help="human-readable event listing")
    p_tl.add_argument("file")
    p_tl.add_argument("--entry", type=int, default=None)
    p_tl.add_argument("--limit", type=int, default=40)
    p_cad = sub.add_parser("cadence", help="remap-cadence statistics")
    p_cad.add_argument("file")
    p_for = sub.add_parser("forensics", help="probe-vs-remap correlation view")
    p_for.add_argument("file")
    p_exp = sub.add_parser("export", help="Chrome trace / Prometheus snapshot export")
    p_exp.add_argument("file")
    p_exp.add_argument("--chrome", default=None, metavar="OUT",
                       help="write Chrome trace-event JSON (Perfetto-loadable)")
    p_exp.add_argument("--prom", default=None, metavar="OUT",
                       help="write a Prometheus text-format snapshot")
    p_ch = sub.add_parser("channel", help="stall-channel capacity per run")
    p_ch.add_argument("file")
    p_ch.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    try:
        records = load(args.file)
        if args.cmd == "validate":
            expect = [e for e in args.expect.split(",") if e]
            print(f"srbsg-trace: OK: {validate(records, expect)}")
        elif args.cmd == "timeline":
            timeline(records, args.entry, args.limit)
        elif args.cmd == "cadence":
            cadence(records)
        elif args.cmd == "forensics":
            forensics(records)
        elif args.cmd == "export":
            if args.chrome is None and args.prom is None:
                print("srbsg-trace: FAIL: export needs --chrome and/or --prom",
                      file=sys.stderr)
                return 2
            if args.chrome is not None:
                _write_out(args.chrome, json.dumps(export_chrome(records)) + "\n")
            if args.prom is not None:
                _write_out(args.prom, export_prom(records))
        elif args.cmd == "channel":
            channel(records, args.json)
    except TraceError as exc:
        print(f"srbsg-trace: FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
