#!/usr/bin/env python3
"""Inspect and validate srbsg telemetry JSONL traces (telemetry_schema 1).

Subcommands (a leading ``--`` is accepted, so ``srbsg-trace --validate``
and ``srbsg-trace validate`` are the same):

  validate FILE [--expect EV[,EV...]]
      Structural checks: header first with telemetry_schema 1, known
      record/event types, per-run seq monotonicity, run bookkeeping
      (retained/dropped vs emitted event lines), and the attribution
      invariant — every GapMoved / KeyRerandomized must follow a
      RemapTriggered from the same run and scheme at the same sim
      instant. Events at the ring's truncation boundary (oldest retained
      timestamp of a run that dropped events) are exempt: their trigger
      may have been dropped. --expect additionally requires at least one
      event of each listed type somewhere in the trace.

  timeline FILE [--entry N] [--limit N]
      Human-readable event listing (default: all entries, first 40
      events each).

  cadence FILE
      Remap-cadence statistics per run: distinct remap instants, mean /
      min / max gap between them, rekey and gap-move counts.

  forensics FILE
      Attack-forensics view: correlates the RTA probe's classified-bit
      stream with the defender's remap / re-key / detector timeline in
      the window the probe was active.

Exit status: 0 on success, 1 on validation failure, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

EVENT_TYPES = (
    "RemapTriggered",
    "GapMoved",
    "KeyRerandomized",
    "DetectorStateChange",
    "LineFailed",
    "BatchChunkApplied",
    "ProbeClassified",
    "EpochApplied",
)

RECORD_TYPES = ("header", "run", "event", "wear_snapshot", "counters", "counters_merged")

ATTRIBUTED = ("GapMoved", "KeyRerandomized")


class TraceError(Exception):
    """A malformed or invariant-violating trace."""


def load(path: str) -> list[dict]:
    records = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(f"line {lineno}: not JSON: {exc}") from exc
                if not isinstance(rec, dict) or "type" not in rec:
                    raise TraceError(f"line {lineno}: record without a 'type'")
                rec["_line"] = lineno
                records.append(rec)
    except OSError as exc:
        raise TraceError(f"cannot read {path}: {exc}") from exc
    if not records:
        raise TraceError("empty trace")
    return records


def events_of(records: list[dict]) -> list[dict]:
    return [r for r in records if r["type"] == "event"]


def runs_of(records: list[dict]) -> dict[int, dict]:
    return {r["entry"]: r for r in records if r["type"] == "run"}


def validate(records: list[dict], expect: list[str]) -> str:
    header = records[0]
    if header["type"] != "header":
        raise TraceError("first record must be the header")
    if header.get("telemetry_schema") != 1:
        raise TraceError(f"telemetry_schema must be 1, got {header.get('telemetry_schema')!r}")
    for rec in records:
        if rec["type"] not in RECORD_TYPES:
            raise TraceError(f"line {rec['_line']}: unknown record type {rec['type']!r}")

    runs = runs_of(records)
    events = events_of(records)
    if header.get("runs") != len(runs):
        raise TraceError(f"header claims {header.get('runs')} runs, trace has {len(runs)}")
    total_pushed = sum(r["events"] for r in runs.values())
    if header.get("events") != total_pushed:
        raise TraceError(
            f"header claims {header.get('events')} events, runs sum to {total_pushed}")

    # Per-run: seq strictly increasing, counts consistent with the run
    # record, attribution of moves/rekeys to a same-instant trigger.
    by_entry: dict[int, list[dict]] = {}
    for ev in events:
        if ev["ev"] not in EVENT_TYPES:
            raise TraceError(f"line {ev['_line']}: unknown event type {ev['ev']!r}")
        if ev["entry"] not in runs:
            raise TraceError(f"line {ev['_line']}: event for entry {ev['entry']} with no run")
        by_entry.setdefault(ev["entry"], []).append(ev)

    for entry, evs in sorted(by_entry.items()):
        run = runs[entry]
        if len(evs) != run["retained"]:
            raise TraceError(
                f"entry {entry}: {len(evs)} event lines but run.retained={run['retained']}")
        if run["retained"] + run["dropped"] != run["events"]:
            raise TraceError(
                f"entry {entry}: retained+dropped != events in the run record")
        prev_seq = None
        prev_t = None
        # Oldest retained instant: attribution is unprovable there when
        # the ring dropped events (the trigger may be among them).
        boundary_t = evs[0]["t"] if run["dropped"] > 0 else None
        last_trigger: dict[str, int] = {}
        for ev in evs:
            if prev_seq is not None and ev["seq"] <= prev_seq:
                raise TraceError(
                    f"line {ev['_line']}: seq not strictly increasing in entry {entry}")
            if prev_t is not None and ev["t"] < prev_t:
                raise TraceError(
                    f"line {ev['_line']}: timestamps regress in entry {entry}")
            prev_seq, prev_t = ev["seq"], ev["t"]
            if ev["ev"] == "RemapTriggered":
                last_trigger[ev["scheme"]] = ev["t"]
            elif ev["ev"] in ATTRIBUTED:
                if ev["t"] == boundary_t:
                    continue
                if last_trigger.get(ev["scheme"]) != ev["t"]:
                    raise TraceError(
                        f"line {ev['_line']}: {ev['ev']} at t={ev['t']} (entry {entry}, "
                        f"scheme {ev['scheme']}) has no RemapTriggered at the same instant")

    for want in expect:
        if want not in EVENT_TYPES:
            raise TraceError(f"--expect {want}: not an event type (known: {EVENT_TYPES})")
        if not any(ev["ev"] == want for ev in events):
            raise TraceError(f"--expect {want}: no such event in the trace")

    attributed = sum(1 for ev in events if ev["ev"] in ATTRIBUTED)
    return (f"{len(runs)} runs, {len(events)} retained events "
            f"({attributed} moves/rekeys attributed), schema 1")


def timeline(records: list[dict], entry: int | None, limit: int) -> None:
    runs = runs_of(records)
    for ent in sorted(runs):
        if entry is not None and ent != entry:
            continue
        run = runs[ent]
        print(f"== entry {ent}: scheme={run['scheme']} attack={run['attack']} "
              f"seed={run['seed']} events={run['events']} dropped={run['dropped']}")
        shown = 0
        for ev in events_of(records):
            if ev["entry"] != ent:
                continue
            if shown >= limit:
                print(f"   ... ({run['retained'] - shown} more)")
                break
            dom = "global" if ev["domain"] == -1 else str(ev["domain"])
            print(f"   t={ev['t']:>14} seq={ev['seq']:>8} {ev['ev']:<20} "
                  f"dom={dom:<7} a={ev['a']} b={ev['b']}")
            shown += 1


def cadence(records: list[dict]) -> None:
    runs = runs_of(records)
    for ent in sorted(runs):
        run = runs[ent]
        instants = sorted({ev["t"] for ev in events_of(records)
                           if ev["entry"] == ent and ev["ev"] == "RemapTriggered"})
        moves = sum(1 for ev in events_of(records)
                    if ev["entry"] == ent and ev["ev"] == "GapMoved")
        rekeys = sum(1 for ev in events_of(records)
                     if ev["entry"] == ent and ev["ev"] == "KeyRerandomized")
        gaps = [b - a for a, b in zip(instants, instants[1:])]
        mean = sum(gaps) / len(gaps) if gaps else 0.0
        print(f"entry {ent} ({run['scheme']} vs {run['attack']}): "
              f"{len(instants)} remap instants, {moves} moves, {rekeys} rekeys")
        if gaps:
            print(f"   gap between remap instants: mean {mean:.0f} ns, "
                  f"min {min(gaps)} ns, max {max(gaps)} ns")


def forensics(records: list[dict]) -> None:
    runs = runs_of(records)
    for ent in sorted(runs):
        run = runs[ent]
        evs = [ev for ev in events_of(records) if ev["entry"] == ent]
        probes = [ev for ev in evs if ev["ev"] == "ProbeClassified"]
        print(f"== entry {ent}: {run['scheme']} vs {run['attack']} (seed {run['seed']})")
        if not probes:
            print("   no ProbeClassified events (probe phase not retained or not run)")
            continue
        t0, t1 = probes[0]["t"], probes[-1]["t"]
        ones = sum(ev["a"] for ev in probes)
        bias = ones / len(probes)
        in_window = [ev for ev in evs if t0 <= ev["t"] <= t1]
        rekeys = sum(1 for ev in in_window if ev["ev"] == "KeyRerandomized")
        remaps = sum(1 for ev in in_window if ev["ev"] == "RemapTriggered")
        boosts = [ev for ev in in_window if ev["ev"] == "DetectorStateChange"]
        print(f"   probe window: t=[{t0}, {t1}] ns, {len(probes)} classified bits, "
              f"bias {bias:.3f}")
        print(f"   defender in window: {remaps} remap triggers, {rekeys} re-keys, "
              f"{len(boosts)} detector changes")
        if rekeys:
            per = len(probes) / rekeys
            print(f"   -> {per:.1f} harvested bits per re-key; each re-key voids the "
                  f"bits before it (paper §IV.B)")
        for ev in evs:
            if ev["ev"] == "LineFailed":
                print(f"   line failed: PA {ev['a']} at t={ev['t']} ns "
                      f"after {ev['b']} writes")


def main(argv: list[str]) -> int:
    if argv and argv[0].startswith("--") and argv[0] != "--help":
        argv = [argv[0].lstrip("-")] + argv[1:]
    parser = argparse.ArgumentParser(prog="srbsg-trace", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_val = sub.add_parser("validate", help="structural + attribution checks")
    p_val.add_argument("file")
    p_val.add_argument("--expect", default="",
                       help="comma-separated event types that must be present")
    p_tl = sub.add_parser("timeline", help="human-readable event listing")
    p_tl.add_argument("file")
    p_tl.add_argument("--entry", type=int, default=None)
    p_tl.add_argument("--limit", type=int, default=40)
    p_cad = sub.add_parser("cadence", help="remap-cadence statistics")
    p_cad.add_argument("file")
    p_for = sub.add_parser("forensics", help="probe-vs-remap correlation view")
    p_for.add_argument("file")
    args = parser.parse_args(argv)

    try:
        records = load(args.file)
        if args.cmd == "validate":
            expect = [e for e in args.expect.split(",") if e]
            print(f"srbsg-trace: OK: {validate(records, expect)}")
        elif args.cmd == "timeline":
            timeline(records, args.entry, args.limit)
        elif args.cmd == "cadence":
            cadence(records)
        elif args.cmd == "forensics":
            forensics(records)
    except TraceError as exc:
        print(f"srbsg-trace: FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
