#!/usr/bin/env python3
"""CI driver for the srbsg-verify bounded model checker.

Wraps the C++ CLI (build/src/srbsg-verify) with the two things CI wants
that the binary deliberately does not do itself:

* a verified-cell cache: every (check, scheme, width) cell that passed
  is recorded keyed on a content hash of the sources its invariant
  exercises plus the exploration bounds, mirroring tools/analyze's
  incremental cache.  A warm run with unchanged sources runs zero
  cells; editing src/wl/rbsg.cpp re-verifies exactly the scheme and
  batch families, editing src/mapping/feistel.cpp the Feistel family.
* SARIF output: counterexamples become SARIF results anchored at the
  source file the family proves things about, via tools/analyze's
  emitter, so the CI verify job uploads one artifact in the same format
  the analyzer already uses.

Mutated runs (--mutate) always bypass the cache in both directions —
an injected fault must neither consume nor poison verified cells.

Exit codes follow the binary: 0 all cells pass (or cached), 1 at least
one counterexample, 2 usage/internal errors.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
sys.path.insert(0, os.path.join(TOOLS_DIR, "analyze"))
import sarif  # noqa: E402  (tools/analyze/sarif.py)

CACHE_VERSION = 1
DEFAULT_BINARY = os.path.join("build", "src", "srbsg-verify")
DEFAULT_CACHE = os.path.join("build", "srbsg-verify-cache.json")

# Source files whose content each family's proof depends on.  Directories
# mean "every .hpp/.cpp directly inside".  src/verify itself is part of
# every key: a checker change invalidates everything it verified.
_COMMON = ["src/verify", "src/common", "src/pcm"]
FAMILY_SOURCES = {
    "feistel-bijection": _COMMON + ["src/mapping"],
    "scheme-roundtrip": _COMMON + ["src/mapping", "src/wl"],
    "remap-preservation": _COMMON + ["src/mapping", "src/wl"],
    "batch-equivalence": _COMMON + ["src/mapping", "src/wl"],
    "epoch-equivalence": _COMMON + ["src/mapping", "src/wl"],
}

# Bounds flags forwarded verbatim to the binary (and folded into cache
# keys: tighter or wider bounds are different proofs).
BOUNDS_FLAGS = [
    "min-width", "max-width", "max-stages", "key-budget-bits",
    "bank-lines", "seeds", "rotation-rounds", "batch-lines",
    "max-pattern-len",
]


class VerifyRule:
    """Shim rule class for sarif.build(); one per check family."""

    def __init__(self, family: str, source: str):
        self.id = family
        self.__name__ = "Verify" + "".join(
            part.capitalize() for part in family.split("-"))
        self.description = (
            f"srbsg-verify invariant family '{family}' found a "
            "counterexample")
        self.suggestion = (
            f"Reproduce with: build/src/srbsg-verify --replay '<replay>' "
            f"(see the finding message); the invariant lives in {source}.")


def family_rules(report: dict) -> list:
    rules = {}
    for cell in report.get("cells", []):
        rules.setdefault(cell["check"], VerifyRule(cell["check"],
                                                   cell["source"]))
    return [rules[k] for k in sorted(rules)]


def _iter_family_files(repo_root: str, family: str):
    for entry in FAMILY_SOURCES[family]:
        root = os.path.join(repo_root, entry)
        if os.path.isfile(root):
            yield root
            continue
        try:
            names = sorted(os.listdir(root))
        except OSError:
            continue
        for name in names:
            if name.endswith((".hpp", ".cpp")):
                yield os.path.join(root, name)


def family_hash(repo_root: str, family: str, memo: dict) -> str:
    cached = memo.get(family)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in _iter_family_files(repo_root, family):
        rel = os.path.relpath(path, repo_root)
        try:
            with open(path, "rb") as fh:
                content = fh.read()
        except OSError:
            continue
        digest.update(rel.encode())
        digest.update(b"\x00")
        digest.update(hashlib.sha256(content).digest())
    result = digest.hexdigest()
    memo[family] = result
    return result


def bounds_signature(args: argparse.Namespace) -> str:
    parts = []
    for flag in BOUNDS_FLAGS:
        value = getattr(args, flag.replace("-", "_"))
        if value is not None:
            parts.append(f"{flag}={value}")
    return ";".join(parts)


def cell_key(repo_root: str, cell: dict, sig: str, memo: dict) -> str:
    src = family_hash(repo_root, cell["check"], memo)
    raw = f"{cell['id']}|{src}|{sig}"
    return hashlib.sha256(raw.encode()).hexdigest()


def load_cache(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        return {}
    entries = data.get("cells")
    return entries if isinstance(entries, dict) else {}


def save_cache(path: str, entries: dict) -> None:
    payload = {"version": CACHE_VERSION, "cells": entries}
    directory = os.path.dirname(path) or "."
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".srbsg-verify-", dir=directory)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        os.replace(tmp, path)
    except OSError:
        pass  # unwritable cache degrades to a cold cache


def bounds_argv(args: argparse.Namespace) -> list:
    argv = []
    for flag in BOUNDS_FLAGS:
        value = getattr(args, flag.replace("-", "_"))
        if value is not None:
            argv += [f"--{flag}", str(value)]
    return argv


def run_binary(args: argparse.Namespace, extra: list) -> subprocess.CompletedProcess:
    cmd = [args.binary] + bounds_argv(args) + extra
    return subprocess.run(cmd, capture_output=True, text=True)


def list_cells(args: argparse.Namespace) -> list:
    proc = run_binary(args, ["--list"])
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(2)
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def sarif_findings(report: dict) -> list:
    findings = []
    for cell in report.get("cells", []):
        if cell.get("pass"):
            continue
        cex = cell.get("counterexample") or {}
        findings.append({
            "check": cell["check"],
            "file": cell["source"],
            "line": 1,
            "context": cell["id"],
            "message": (
                f"cell {cell['id']}: {cex.get('message', 'invariant failed')}"
                f" [witness {cex.get('original_size', '?')} -> "
                f"{cex.get('size', '?')} items; replay: "
                f"{cex.get('replay', '')}]"),
        })
    return findings


def write_sarif(path: str, report: dict, repo_root: str) -> None:
    doc = sarif.build(sarif_findings(report), [], [], family_rules(report),
                      repo_root)
    doc["runs"][0]["tool"]["driver"]["name"] = "srbsg-verify"
    errors = sarif.validate(doc)
    if errors:
        raise SystemExit(f"srbsg-verify: internal SARIF errors: {errors}")
    sarif.write(path, doc)


def cmd_run(args: argparse.Namespace) -> int:
    repo_root = os.path.abspath(args.repo_root)
    selected = list_cells(args)
    if args.prefixes:
        selected = [cid for cid in selected
                    if any(cid.startswith(p) for p in args.prefixes)]
        if not selected:
            print("srbsg-verify: no cells match the given prefixes",
                  file=sys.stderr)
            return 2

    mutated = args.mutate not in (None, "none")
    use_cache = not args.no_cache and not mutated
    entries = load_cache(args.cache) if use_cache else {}
    sig = bounds_signature(args)
    memo: dict = {}

    to_run = []
    cached = []
    # `--list` emits cell ids only; check family is recoverable from the
    # id prefix.
    prefix_to_family = {
        "feistel/": "feistel-bijection",
        "roundtrip/": "scheme-roundtrip",
        "preserve/": "remap-preservation",
        "batch/": "batch-equivalence",
        "epoch/": "epoch-equivalence",
    }
    keys = {}
    for cid in selected:
        family = next((fam for pre, fam in prefix_to_family.items()
                       if cid.startswith(pre)), None)
        if family is None:
            print(f"srbsg-verify: unknown cell id shape: {cid}",
                  file=sys.stderr)
            return 2
        key = cell_key(repo_root, {"id": cid, "check": family}, sig, memo)
        keys[cid] = key
        if use_cache and entries.get(cid, {}).get("key") == key:
            cached.append(cid)
        else:
            to_run.append(cid)

    for cid in cached:
        print(f"CACHED {cid}")

    report = {"cells": []}
    rc = 0
    if to_run:
        fd, report_path = tempfile.mkstemp(suffix=".json",
                                           prefix=".srbsg-verify-report-")
        os.close(fd)
        try:
            extra = ["--json", report_path]
            if args.threads is not None:
                extra += ["--threads", str(args.threads)]
            if mutated:
                extra += ["--mutate", args.mutate,
                          "--arm-after", str(args.arm_after)]
            proc = run_binary(args, extra + to_run)
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            rc = proc.returncode
            if rc not in (0, 1):
                return rc
            with open(report_path, encoding="utf-8") as fh:
                report = json.load(fh)
        finally:
            try:
                os.unlink(report_path)
            except OSError:
                pass
        if report.get("schema_version") != 1:
            print("srbsg-verify: unexpected report schema", file=sys.stderr)
            return 2
        if use_cache:
            for cell in report["cells"]:
                if cell["pass"]:
                    entries[cell["id"]] = {
                        "key": keys[cell["id"]],
                        "states": cell["states"],
                    }
                else:
                    entries.pop(cell["id"], None)
            save_cache(args.cache, entries)
    else:
        print(f"all {len(cached)} selected cells verified from cache")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
    if args.sarif:
        write_sarif(args.sarif, report, repo_root)
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="srbsg-verify",
        description="cache/SARIF driver for the bounded model checker")
    parser.add_argument("prefixes", nargs="*",
                        help="cell id prefixes to run (default: all)")
    parser.add_argument("--binary", default=DEFAULT_BINARY,
                        help="path to the srbsg-verify executable")
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--cache", default=DEFAULT_CACHE,
                        help="verified-cell cache file")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the cell cache")
    parser.add_argument("--sarif", help="write a SARIF report here")
    parser.add_argument("--json-out",
                        help="write the raw JSON report here")
    parser.add_argument("--threads", type=int)
    parser.add_argument("--mutate",
                        help="fault injection kind (bypasses the cache)")
    parser.add_argument("--arm-after", type=int, default=0)
    parser.add_argument("--selftest", action="store_true",
                        help="exercise cache + SARIF plumbing and exit")
    for flag in BOUNDS_FLAGS:
        parser.add_argument(f"--{flag}", dest=flag.replace("-", "_"))
    return parser


# -- selftest -----------------------------------------------------------------

def _selftest(args: argparse.Namespace) -> int:
    """End-to-end check of the driver: cold run verifies, warm run is
    fully cached, a bounds change invalidates, a mutated run produces a
    valid SARIF counterexample and leaves the cache untouched."""
    if not os.path.exists(args.binary):
        print(f"selftest: binary not found at {args.binary}; "
              "build srbsg-verify first (skip)")
        return 77

    failures = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)
            print(f"selftest FAIL: {what}", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="srbsg-verify-st-") as tmp:
        cache = os.path.join(tmp, "cache.json")
        sarif_path = os.path.join(tmp, "report.sarif")
        flags = [sys.executable, os.path.abspath(__file__),
                 "--binary", os.path.abspath(args.binary),
                 "--cache", cache,
                 "--max-width", "4", "--seeds", "1",
                 "--rotation-rounds", "1", "--max-pattern-len", "2",
                 "--bank-lines", "16"]
        cells = ["feistel/w4", "roundtrip/none/", "batch/none/"]
        base = flags + cells

        cold = subprocess.run(base, capture_output=True, text=True)
        expect(cold.returncode == 0, f"cold run rc={cold.returncode}: "
               f"{cold.stderr}")
        expect("PASS feistel/w4" in cold.stdout, "cold run ran feistel/w4")
        expect(os.path.exists(cache), "cold run wrote the cache")

        warm = subprocess.run(base, capture_output=True, text=True)
        expect(warm.returncode == 0, f"warm run rc={warm.returncode}")
        expect("all 3 selected cells verified from cache" in warm.stdout,
               f"warm run fully cached (stdout: {warm.stdout!r})")

        # argparse takes the last occurrence, so this reruns with seeds=2.
        wider = subprocess.run(flags + ["--seeds", "2"] + cells,
                               capture_output=True, text=True)
        expect(wider.returncode == 0, f"bounds-change run rc="
               f"{wider.returncode}")
        expect("PASS" in wider.stdout,
               "changed bounds invalidated the cache")

        before = load_cache(cache)
        hurt = subprocess.run(
            flags + ["--mutate", "batch-skip", "--max-pattern-len", "3",
                     "--sarif", sarif_path, "batch/start-gap/"],
            capture_output=True, text=True)
        expect(hurt.returncode == 1,
               f"mutated run rc={hurt.returncode} (want 1): {hurt.stderr}")
        expect(load_cache(cache) == before,
               "mutated run must not touch the cache")
        try:
            with open(sarif_path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError:
            doc = None
        expect(doc is not None, "mutated run wrote SARIF")
        if doc is not None:
            expect(not sarif.validate(doc), "SARIF document validates")
            results = doc["runs"][0]["results"]
            expect(len(results) >= 1, "SARIF carries the counterexample")
            expect("replay:" in results[0]["message"]["text"],
                   "SARIF message embeds the replay string")

    if not failures:
        print("selftest: driver cache + SARIF plumbing ok")
        return 0
    return 2


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.selftest:
        return _selftest(args)
    return cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
