#!/usr/bin/env python3
"""ctest driver: telemetry JSONL round-trip through the forensics bench.

Runs the rta_forensics bench at reduced scale with --telemetry, then
feeds the resulting JSONL to `srbsg-trace validate`, which checks the
trace structure and the attribution invariant (every GapMoved /
KeyRerandomized follows a same-instant RemapTriggered) and requires the
event types the bench is guaranteed to produce.

Exits 77 (the ctest SKIP code) when the bench binary has not been built
in this tree.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import tempfile

# Event types a seeded RTA-probe-vs-SecurityRBSG run always produces:
# inner/outer remaps with their moves and DFN re-keys, the probe's
# latency classifications, the detector reacting to the hammer phase,
# and the final line failure (budget 2^30 far exceeds the reduced-scale
# lifetime, so the run ends in a failure, never in budget exhaustion).
EXPECT = ",".join(
    [
        "RemapTriggered",
        "GapMoved",
        "KeyRerandomized",
        "DetectorStateChange",
        "ProbeClassified",
        "LineFailed",
    ]
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True, help="path to the rta_forensics binary")
    ap.add_argument("--trace-tool", required=True, help="path to tools/srbsg-trace")
    ap.add_argument("--seeds", default="1", help="seeded replicas to run (default 1)")
    args = ap.parse_args()

    bench = pathlib.Path(args.bench)
    if not bench.exists():
        print(f"skip: bench binary not built: {bench}", file=sys.stderr)
        return 77

    with tempfile.TemporaryDirectory(prefix="srbsg-trace-") as tmp:
        trace = pathlib.Path(tmp) / "forensics.jsonl"
        run = subprocess.run(
            [str(bench), "--seeds", args.seeds, "--telemetry", str(trace)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        sys.stdout.write(run.stdout)
        if run.returncode != 0:
            print(f"FAIL: rta_forensics exited {run.returncode}", file=sys.stderr)
            return 1
        if not trace.is_file():
            print("FAIL: bench did not write the trace file", file=sys.stderr)
            return 1

        val = subprocess.run(
            [sys.executable, args.trace_tool, "validate", str(trace), "--expect", EXPECT],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        sys.stdout.write(val.stdout)
        if val.returncode != 0:
            print(f"FAIL: srbsg-trace validate exited {val.returncode}", file=sys.stderr)
            return 1

    print("trace round-trip OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
