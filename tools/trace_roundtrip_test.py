#!/usr/bin/env python3
"""ctest driver: telemetry JSONL round-trip through the forensics bench.

Runs the rta_forensics bench at reduced scale with --trace-out, then
feeds the resulting JSONL (telemetry_schema 2) to `srbsg-trace
validate`, which checks the trace structure, the attribution invariant
(every GapMoved / KeyRerandomized follows a same-instant
RemapTriggered), span pairing and histogram consistency, and requires
the event types the bench is guaranteed to produce. The Chrome /
Prometheus exporters are smoke-tested on the same trace, and a
hand-written telemetry_schema 1 trace is validated to pin the
back-compat reader path.

Exits 77 (the ctest SKIP code) when the bench binary has not been built
in this tree.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

# A minimal but fully-consistent schema 1 trace: one run, two retained
# events, a remap trigger attributed by a same-instant gap move. The v2
# reader must keep accepting exactly this layout.
V1_TRACE = "\n".join([
    '{"type":"header","telemetry_schema":1,"runs":1,"events":2}',
    '{"type":"run","entry":0,"scheme":"security-rbsg","attack":"rta-probe",'
    '"seed":1,"events":2,"retained":2,"dropped":0,"snapshots":0}',
    '{"type":"event","entry":0,"seq":0,"t":100,"ev":"RemapTriggered",'
    '"scheme":"security-rbsg","domain":-1,"a":0,"b":0}',
    '{"type":"event","entry":0,"seq":1,"t":100,"ev":"GapMoved",'
    '"scheme":"security-rbsg","domain":-1,"a":3,"b":4}',
    '{"type":"counters","entry":0,"counters":{"ctl.writes":1}}',
    '{"type":"counters_merged","counters":{"ctl.writes":1}}',
]) + "\n"

# Event types a seeded RTA-probe-vs-SecurityRBSG run always produces:
# inner/outer remaps with their moves and DFN re-keys, the probe's
# latency classifications, the detector reacting to the hammer phase,
# and the final line failure (budget 2^30 far exceeds the reduced-scale
# lifetime, so the run ends in a failure, never in budget exhaustion).
EXPECT = ",".join(
    [
        "RemapTriggered",
        "GapMoved",
        "KeyRerandomized",
        "DetectorStateChange",
        "ProbeClassified",
        "LineFailed",
    ]
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True, help="path to the rta_forensics binary")
    ap.add_argument("--trace-tool", required=True, help="path to tools/srbsg-trace")
    ap.add_argument("--seeds", default="1", help="seeded replicas to run (default 1)")
    args = ap.parse_args()

    bench = pathlib.Path(args.bench)
    if not bench.exists():
        print(f"skip: bench binary not built: {bench}", file=sys.stderr)
        return 77

    with tempfile.TemporaryDirectory(prefix="srbsg-trace-") as tmp:
        trace = pathlib.Path(tmp) / "forensics.jsonl"
        run = subprocess.run(
            [str(bench), "--seeds", args.seeds, "--trace-out", str(trace)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        sys.stdout.write(run.stdout)
        if run.returncode != 0:
            print(f"FAIL: rta_forensics exited {run.returncode}", file=sys.stderr)
            return 1
        if not trace.is_file():
            print("FAIL: bench did not write the trace file", file=sys.stderr)
            return 1

        val = subprocess.run(
            [sys.executable, args.trace_tool, "validate", str(trace), "--expect", EXPECT],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        sys.stdout.write(val.stdout)
        if val.returncode != 0:
            print(f"FAIL: srbsg-trace validate exited {val.returncode}", file=sys.stderr)
            return 1
        if "schema 2" not in val.stdout:
            print("FAIL: live trace did not validate as telemetry_schema 2",
                  file=sys.stderr)
            return 1

        # Exporter smoke: the Chrome trace must be JSON with a traceEvents
        # array, the Prometheus snapshot must carry both histograms.
        chrome = pathlib.Path(tmp) / "trace.chrome.json"
        prom = pathlib.Path(tmp) / "trace.prom"
        exp = subprocess.run(
            [sys.executable, args.trace_tool, "export", str(trace),
             "--chrome", str(chrome), "--prom", str(prom)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        sys.stdout.write(exp.stdout)
        if exp.returncode != 0:
            print(f"FAIL: srbsg-trace export exited {exp.returncode}", file=sys.stderr)
            return 1
        doc = json.loads(chrome.read_text(encoding="utf-8"))
        if not isinstance(doc.get("traceEvents"), list) or not doc["traceEvents"]:
            print("FAIL: Chrome export has no traceEvents", file=sys.stderr)
            return 1
        prom_text = prom.read_text(encoding="utf-8")
        for metric in ("srbsg_write_ns_count", "srbsg_stall_ns_count"):
            if metric not in prom_text:
                print(f"FAIL: Prometheus export is missing {metric}", file=sys.stderr)
                return 1

        # Back-compat: a schema 1 trace (no spans, no histograms) must
        # still validate under the v2 reader.
        v1 = pathlib.Path(tmp) / "v1.jsonl"
        v1.write_text(V1_TRACE, encoding="utf-8")
        old = subprocess.run(
            [sys.executable, args.trace_tool, "validate", str(v1),
             "--expect", "RemapTriggered,GapMoved"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        sys.stdout.write(old.stdout)
        if old.returncode != 0 or "schema 1" not in old.stdout:
            print("FAIL: schema 1 back-compat trace did not validate", file=sys.stderr)
            return 1

    print("trace round-trip OK (schema 2 live trace + exporters + schema 1 back-compat)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
